// Hot-path throughput record for the three runtime-dispatch layers plus the
// end-to-end effect: SHA-256 MB/s per kernel (one-shot and multi-buffer),
// HMAC context reuse, EventQueue events/s against the seed shared_ptr design,
// GF(256) AVX2-vs-SSSE3, and fig09-style wall-clock at n ∈ {100, 300}.
//
// Emits one JSON record on stdout (diagnostics on stderr) so CI and future
// PRs can track the trajectory: tools/check_bench_regression.py compares the
// machine-portable ratio metrics against the committed BENCH_hotpath.json and
// fails on >30% regression. See docs/PERF.md.
//
// Usage: bench_hotpath [--smoke] [--skip-fig09] [--no-acceptance]
//   --smoke          tiny sizes / short timings, no acceptance enforcement.
//   --skip-fig09     skip the (slow) end-to-end wall-clock section.
//   --no-acceptance  record but do not enforce the acceptance targets (CI
//                    uses this so check_bench_regression.py — which knows how
//                    to absorb shared-runner noise — is the sole verdict).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/threshold_sig.hpp"
#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "harness/experiment.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace lc = leopard::crypto;
namespace le = leopard::erasure;
namespace ls = leopard::sim;
namespace lu = leopard::util;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// ---------------------------------------------------------------------------
// The seed event queue, reproduced verbatim-in-spirit as the ≥5x baseline:
// two shared_ptr control blocks per event plus a std::priority_queue of
// entries that copy them on every sift.
// ---------------------------------------------------------------------------

class SeedEventQueue {
 public:
  struct Handle {
    std::shared_ptr<bool> cancelled;
    void cancel() {
      if (cancelled) *cancelled = true;
    }
  };

  Handle schedule(ls::SimTime at, std::function<void()> fn) {
    auto flag = std::make_shared<bool>(false);
    heap_.push(Entry{at, next_seq_++,
                     std::make_shared<std::function<void()>>(std::move(fn)), flag});
    return Handle{std::move(flag)};
  }

  std::optional<std::pair<ls::SimTime, std::shared_ptr<std::function<void()>>>> pop_next(
      ls::SimTime limit) {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
    if (heap_.empty() || heap_.top().at > limit) return std::nullopt;
    Entry e = heap_.top();
    heap_.pop();
    return std::make_pair(e.at, std::move(e.fn));
  }

 private:
  struct Entry {
    ls::SimTime at = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<std::function<void()>> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

// ---------------------------------------------------------------------------
// Section timers
// ---------------------------------------------------------------------------

struct ShaRecord {
  lc::Sha256::Kernel kernel;
  double one_shot_mbps = 0;
  double hash_many_mbps = 0;
};

ShaRecord run_sha_point(lc::Sha256::Kernel kernel, std::size_t buf_bytes,
                        std::size_t leaf_bytes, std::size_t leaf_count, double min_time) {
  lc::Sha256::force_kernel(kernel);
  ShaRecord rec{kernel, 0, 0};

  lu::Bytes buf(buf_bytes);
  lu::Rng rng(buf_bytes * 31 + 7);
  rng.fill(buf.data(), buf.size());

  {
    volatile std::uint8_t sink = 0;
    (void)lc::Sha256::hash(buf);  // warm-up
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      sink = sink ^ lc::Sha256::hash(buf)[0];
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    rec.one_shot_mbps = static_cast<double>(buf_bytes) * iters / elapsed / 1e6;
  }

  {
    lu::Bytes arena(leaf_bytes * leaf_count);
    rng.fill(arena.data(), arena.size());
    std::vector<lc::Sha256::DigestBytes> out(leaf_count);
    const std::uint8_t tag = 0x00;
    lc::Sha256::hash_many({&tag, 1}, arena.data(), leaf_bytes, leaf_bytes, leaf_count,
                          out.data());
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      lc::Sha256::hash_many({&tag, 1}, arena.data(), leaf_bytes, leaf_bytes, leaf_count,
                            out.data());
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    rec.hash_many_mbps = static_cast<double>(arena.size()) * iters / elapsed / 1e6;
  }
  return rec;
}

struct HmacTiming {
  double context_ops_s = 0;
  double fresh_ops_s = 0;
};

HmacTiming run_hmac(double min_time) {
  HmacTiming t;
  lu::Bytes key(32);
  lu::Bytes msg(32);  // a vote target: H(m) is 32 bytes
  lu::Rng rng(1234);
  rng.fill(key.data(), key.size());
  rng.fill(msg.data(), msg.size());

  {
    const lc::HmacContext ctx(key);
    volatile std::uint8_t sink = 0;
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      sink = sink ^ ctx.mac(msg)[0];
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    t.context_ops_s = iters / elapsed;
  }
  {
    volatile std::uint8_t sink = 0;
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      sink = sink ^ lc::hmac_sha256(key, msg)[0];  // re-keys every call
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    t.fresh_ops_s = iters / elapsed;
  }
  return t;
}

struct VoteCombineTiming {
  double batched_shares_s = 0;
  double scalar_shares_s = 0;
};

/// Leader vote aggregation at the fig09 n=100 point: combine() over a
/// 2f+1 = 67-share quorum. Batched = the production combine() (cross-keyed
/// two-lane share pairs); scalar = the pre-batching shape, one full
/// verify_share() per share plus the master evaluation.
VoteCombineTiming run_vote_combine(double min_time) {
  constexpr std::uint32_t kN = 100;
  constexpr std::uint32_t kQuorum = 67;
  const lc::ThresholdScheme ts(kN, kQuorum, 99);
  lu::Bytes msg(32);
  lu::Rng rng(555);
  rng.fill(msg.data(), msg.size());

  std::vector<lc::SignatureShare> shares;
  shares.reserve(kQuorum);
  for (std::uint32_t i = 0; i < kQuorum; ++i) shares.push_back(ts.sign_share(i, msg));
  const auto combined = ts.combine(msg, shares);

  VoteCombineTiming t;
  {
    volatile bool sink = false;
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      sink = sink ^ ts.combine(msg, shares).has_value();
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    t.batched_shares_s = static_cast<double>(kQuorum) * iters / elapsed;
  }
  {
    volatile bool sink = false;
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0;
    do {
      bool ok = true;
      for (const auto& s : shares) ok = ok && ts.verify_share(msg, s);
      sink = sink ^ (ok && ts.verify(msg, *combined));
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_time);
    t.scalar_shares_s = static_cast<double>(kQuorum) * iters / elapsed;
  }
  return t;
}

struct EventQueueTiming {
  double events_s = 0;
  double seed_events_s = 0;
  double plain_events_s = 0;
  double plain_seed_events_s = 0;
};

/// The simulated per-message payload shape: the real network hop closures
/// capture this + two node ids + a PayloadPtr + a size (~40 bytes including a
/// shared_ptr), which is what forces the seed design's third allocation.
struct HopPayload {
  std::size_t size = 128;
};

std::uint64_t g_eq_sink = 0;

/// Request-lifecycle hold model at a steady `depth`: each fired event
/// schedules its successor, arms `timeouts_per_event` resubmission-style
/// timers, and cancels that many old ones — the simulator's per-request
/// pattern (client resubmission, retrieval, view-change escalation timers are
/// armed per request/hop and almost always cancelled). Counts every scheduled
/// event (each is later popped or cancelled) per second.
///
/// `timeouts_per_event = 0` degenerates to the plain schedule+pop hold model.
template <typename Queue, typename PopRun>
double run_queue_lifecycle(std::size_t depth, std::size_t ops, std::size_t timeouts_per_event,
                           PopRun poprun) {
  Queue q;
  lu::Rng rng(777);
  auto payload = std::make_shared<const HopPayload>();
  auto make_cb = [&]() {
    return [p = payload, from = 1u, to = 2u, size = std::size_t{194}] {
      g_eq_sink += size + from + to + p->size;
    };
  };
  std::deque<decltype(q.schedule(0, make_cb()))> timeouts;
  for (std::size_t i = 0; i < depth; ++i) {
    q.schedule(static_cast<ls::SimTime>(rng.uniform(100000)), make_cb());
  }
  std::uint64_t scheduled = 0;
  ls::SimTime now = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    now = poprun(q);
    q.schedule(now + 1 + static_cast<ls::SimTime>(rng.uniform(100000)), make_cb());
    ++scheduled;
    for (std::size_t t = 0; t < timeouts_per_event; ++t) {
      timeouts.push_back(
          q.schedule(now + 100000000 + static_cast<ls::SimTime>(rng.uniform(100000)),
                     make_cb()));
      ++scheduled;
    }
    while (timeouts.size() > timeouts_per_event * 64) {
      timeouts.front().cancel();
      timeouts.pop_front();
    }
  }
  return static_cast<double>(scheduled) / seconds_since(start);
}

EventQueueTiming run_event_queue(std::size_t depth, std::size_t ops,
                                 std::size_t timeouts_per_event) {
  constexpr ls::SimTime kNoLimit = ls::SimTime{1} << 60;
  const auto pop_new = [](ls::EventQueue& q) {
    auto e = q.pop_next(kNoLimit);
    e->second();
    return e->first;
  };
  const auto pop_seed = [](SeedEventQueue& q) {
    auto e = q.pop_next(kNoLimit);
    (*e->second)();
    return e->first;
  };
  EventQueueTiming t;
  t.events_s = run_queue_lifecycle<ls::EventQueue>(depth, ops, timeouts_per_event, pop_new);
  t.seed_events_s =
      run_queue_lifecycle<SeedEventQueue>(depth, ops, timeouts_per_event, pop_seed);
  t.plain_events_s = run_queue_lifecycle<ls::EventQueue>(depth, ops, 0, pop_new);
  t.plain_seed_events_s = run_queue_lifecycle<SeedEventQueue>(depth, ops, 0, pop_seed);
  return t;
}

/// GF(256) parity-row encode throughput under `kernel` at the acceptance
/// point (k=32, 64 KiB shards — the Leopard f+1 regime).
double run_gf256_encode(le::Gf256::Kernel kernel, std::size_t shard_bytes, double min_time) {
  le::Gf256::force_kernel(kernel);
  const std::uint32_t k = 32, n = 96;
  const le::ReedSolomon rs(k, n);
  const std::size_t msg_bytes = shard_bytes * k - 4;
  lu::Bytes msg(msg_bytes);
  lu::Rng rng(4321);
  rng.fill(msg.data(), msg.size());
  le::RsScratch scratch;
  (void)rs.encode_into(msg, scratch);
  int iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    (void)rs.encode_into(msg, scratch);
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < min_time);
  return static_cast<double>(msg_bytes) * iters / elapsed / 1e6;
}

struct Fig09Point {
  std::uint32_t n = 0;
  double wall_s = 0;
  double kreqs_s = 0;
};

Fig09Point run_fig09(std::uint32_t n) {
  leopard::harness::ExperimentConfig cfg;
  cfg.n = n;
  // Table II batch parameters for this scale (bench_common.hpp).
  if (n <= 64) {
    cfg.datablock_requests = 2000;
    cfg.bftblock_links = 100;
  } else if (n <= 128) {
    cfg.datablock_requests = 3000;
    cfg.bftblock_links = 300;
  } else if (n <= 300) {
    cfg.datablock_requests = 4000;
    cfg.bftblock_links = 300;
  } else {
    cfg.datablock_requests = 4000;
    cfg.bftblock_links = 400;
  }
  Fig09Point p;
  p.n = n;
  const auto start = Clock::now();
  const auto result = leopard::harness::run_experiment(cfg);
  p.wall_s = seconds_since(start);
  p.kreqs_s = result.throughput_kreqs;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool skip_fig09 = false;
  bool enforce_acceptance = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--skip-fig09") == 0) {
      skip_fig09 = true;
    } else if (std::strcmp(argv[i], "--no-acceptance") == 0) {
      enforce_acceptance = false;
    } else {
      std::fprintf(stderr,
                   "unknown flag: %s\nusage: %s [--smoke] [--skip-fig09] [--no-acceptance]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  const double min_time = smoke ? 0.02 : 0.25;
  const std::size_t sha_buf = smoke ? (1u << 16) : (1u << 20);
  const std::size_t leaf_bytes = 1024, leaf_count = smoke ? 32 : 256;
  // Event-core point: depth 4096 is the measured in-flight event count of a
  // fig09 n≈100 run; 4 armed-then-cancelled timeouts per fired event is the
  // request-lifecycle mix (client resubmission + retrieval + view-change).
  const std::size_t eq_depth = smoke ? 512 : 4096;
  const std::size_t eq_ops = smoke ? 50000 : 500000;
  const std::size_t eq_timeouts = 4;
  // GF(256) acceptance point: L2-resident shard width (the retrieval-chunk
  // regime: a datablock split k ways is a few KiB per shard); the 64 KiB
  // point from bench_erasure_kernel is memory-bound and tracks DRAM, not the
  // kernel.
  const std::size_t gf_shard = 1u << 10;

  std::printf("{\"bench\":\"hotpath\",\"smoke\":%s", smoke ? "true" : "false");

  // --- SHA-256 --------------------------------------------------------------
  const auto sha_fast = lc::Sha256::active_kernel();
  double sha_portable_one_shot = 0, sha_fast_one_shot = 0;
  double sha_portable_many = 0, sha_fast_many = 0;
  std::printf(",\"sha256\":{\"kernel\":\"%s\",\"records\":[", lc::Sha256::kernel_name(sha_fast));
  bool first = true;
  double sha_wide_many = 0;
  lc::Sha256::Kernel sha_wide_kernel = lc::Sha256::Kernel::kPortable;
  for (const auto k : {lc::Sha256::Kernel::kPortable, lc::Sha256::Kernel::kShaNi,
                       lc::Sha256::Kernel::kArmCe, lc::Sha256::Kernel::kAvx2,
                       lc::Sha256::Kernel::kSse2, lc::Sha256::Kernel::kNeon}) {
    if (!lc::Sha256::kernel_available(k)) continue;
    const auto rec = run_sha_point(k, sha_buf, leaf_bytes, leaf_count, min_time);
    if (k == lc::Sha256::Kernel::kPortable) {
      sha_portable_one_shot = rec.one_shot_mbps;
      sha_portable_many = rec.hash_many_mbps;
    }
    if (k == sha_fast) {
      sha_fast_one_shot = rec.one_shot_mbps;
      sha_fast_many = rec.hash_many_mbps;
    }
    // Track the best transposed n-lane kernel for the wide section below.
    if ((k == lc::Sha256::Kernel::kAvx2 || k == lc::Sha256::Kernel::kSse2 ||
         k == lc::Sha256::Kernel::kNeon) &&
        rec.hash_many_mbps > sha_wide_many) {
      sha_wide_many = rec.hash_many_mbps;
      sha_wide_kernel = k;
    }
    std::printf("%s{\"kernel\":\"%s\",\"one_shot_MBps\":%s,\"hash_many_MBps\":%s}",
                first ? "" : ",", lc::Sha256::kernel_name(k), fmt1(rec.one_shot_mbps).c_str(),
                fmt1(rec.hash_many_mbps).c_str());
    first = false;
    std::fflush(stdout);
  }
  lc::Sha256::force_kernel(sha_fast);
  // No hardware one-shot kernel -> no portable speedup ratio: emit null so
  // the CI checker skips the metric instead of comparing 1.0 against a
  // SHA-NI baseline (same contract as the gf256 section's missing-AVX2
  // case). The transposed n-lane kernels don't count here — their
  // single-stream path IS the portable loop.
  const bool sha_hw = sha_fast == lc::Sha256::Kernel::kShaNi ||
                      sha_fast == lc::Sha256::Kernel::kArmCe;
  const double sha_speedup =
      sha_hw && sha_portable_one_shot > 0 ? sha_fast_one_shot / sha_portable_one_shot : 0;
  const double sha_many_speedup =
      sha_hw && sha_portable_many > 0 ? sha_fast_many / sha_portable_many : 0;
  std::printf("],\"speedup_one_shot\":%s,\"speedup_hash_many\":%s}",
              sha_speedup > 0 ? fmt2(sha_speedup).c_str() : "null",
              sha_many_speedup > 0 ? fmt2(sha_many_speedup).c_str() : "null");

  // --- n-lane multi-buffer SHA (the portable-fallback story) ----------------
  // hash_many through the widest transposed kernel vs the two-lane portable
  // path: the gain a machine WITHOUT SHA ISA sees on Merkle/vote batches.
  const bool sha_has_wide = sha_wide_many > 0;
  const double sha_wide_speedup =
      sha_has_wide && sha_portable_many > 0 ? sha_wide_many / sha_portable_many : 0;
  {
    lc::Sha256::force_kernel(sha_wide_kernel);
    const std::size_t lanes = sha_has_wide ? lc::Sha256::wide_lanes() : 0;
    lc::Sha256::force_kernel(sha_fast);
    std::printf(",\"sha256_wide\":{\"kernel\":\"%s\",\"lanes\":%zu,"
                "\"wide_hash_many_MBps\":%s,\"portable_hash_many_MBps\":%s,"
                "\"speedup_wide\":%s}",
                sha_has_wide ? lc::Sha256::kernel_name(sha_wide_kernel) : "none", lanes,
                fmt1(sha_wide_many).c_str(), fmt1(sha_portable_many).c_str(),
                sha_wide_speedup > 0 ? fmt2(sha_wide_speedup).c_str() : "null");
  }

  // --- HMAC -----------------------------------------------------------------
  const auto hmac = run_hmac(min_time);
  const double hmac_speedup = hmac.fresh_ops_s > 0 ? hmac.context_ops_s / hmac.fresh_ops_s : 0;
  std::printf(",\"hmac\":{\"context_ops_s\":%s,\"fresh_ops_s\":%s,\"speedup\":%s}",
              fmt1(hmac.context_ops_s).c_str(), fmt1(hmac.fresh_ops_s).c_str(),
              fmt2(hmac_speedup).c_str());

  // --- Vote combine (batched share verification) ----------------------------
  const auto vc = run_vote_combine(min_time);
  const double vc_speedup =
      vc.scalar_shares_s > 0 ? vc.batched_shares_s / vc.scalar_shares_s : 0;
  std::printf(",\"vote_combine\":{\"quorum\":67,\"batched_shares_s\":%s,"
              "\"scalar_shares_s\":%s,\"speedup\":%s}",
              fmt1(vc.batched_shares_s).c_str(), fmt1(vc.scalar_shares_s).c_str(),
              fmt2(vc_speedup).c_str());

  // --- EventQueue -----------------------------------------------------------
  const auto eq = run_event_queue(eq_depth, eq_ops, eq_timeouts);
  const double eq_speedup = eq.seed_events_s > 0 ? eq.events_s / eq.seed_events_s : 0;
  const double eq_plain_speedup =
      eq.plain_seed_events_s > 0 ? eq.plain_events_s / eq.plain_seed_events_s : 0;
  std::printf(",\"event_queue\":{\"depth\":%zu,\"timeouts_per_event\":%zu,"
              "\"events_s\":%s,\"seed_events_s\":%s,\"speedup\":%s,"
              "\"plain_events_s\":%s,\"plain_seed_events_s\":%s,\"plain_speedup\":%s}",
              eq_depth, eq_timeouts, fmt1(eq.events_s).c_str(),
              fmt1(eq.seed_events_s).c_str(), fmt2(eq_speedup).c_str(),
              fmt1(eq.plain_events_s).c_str(), fmt1(eq.plain_seed_events_s).c_str(),
              fmt2(eq_plain_speedup).c_str());

  // --- GF(256) AVX2 vs SSSE3 ------------------------------------------------
  const auto gf_prev = le::Gf256::active_kernel();
  double gf_ssse3 = 0, gf_avx2 = 0, gf_ratio = 0;
  const bool have_avx2 = le::Gf256::kernel_available(le::Gf256::Kernel::kAvx2);
  if (le::Gf256::kernel_available(le::Gf256::Kernel::kSsse3)) {
    gf_ssse3 = run_gf256_encode(le::Gf256::Kernel::kSsse3, gf_shard, min_time);
  }
  if (have_avx2) {
    gf_avx2 = run_gf256_encode(le::Gf256::Kernel::kAvx2, gf_shard, min_time);
  }
  le::Gf256::force_kernel(gf_prev);
  if (gf_ssse3 > 0 && gf_avx2 > 0) gf_ratio = gf_avx2 / gf_ssse3;
  std::printf(",\"gf256\":{\"k\":32,\"shard_bytes\":%zu,\"ssse3_encode_MBps\":%s,"
              "\"avx2_encode_MBps\":%s,\"avx2_vs_ssse3\":%s}",
              gf_shard, fmt1(gf_ssse3).c_str(), fmt1(gf_avx2).c_str(),
              gf_ratio > 0 ? fmt2(gf_ratio).c_str() : "null");

  // --- fig09-style end-to-end wall-clock -------------------------------------
  std::printf(",\"fig09\":[");
  if (!skip_fig09) {
    const std::vector<std::uint32_t> scales =
        smoke ? std::vector<std::uint32_t>{16} : std::vector<std::uint32_t>{100, 300};
    first = true;
    for (const auto n : scales) {
      std::fflush(stdout);
      const auto p = run_fig09(n);
      std::printf("%s{\"n\":%u,\"wall_s\":%s,\"kreqs_s\":%s}", first ? "" : ",", p.n,
                  fmt2(p.wall_s).c_str(), fmt1(p.kreqs_s).c_str());
      first = false;
    }
  }
  std::printf("]");

  // --- acceptance -----------------------------------------------------------
  // SHA speedup only binds where a hardware kernel exists; AVX2 ratio only
  // where AVX2 exists; the n-lane ratio only where a transposed wide kernel
  // exists (everywhere except portable-only builds).
  const bool sha_ok = !sha_hw || sha_speedup >= 4.0;
  const bool eq_ok = eq_speedup >= 5.0;
  const bool gf_ok = !have_avx2 || gf_ssse3 <= 0 || gf_ratio >= 1.5;
  const bool wide_ok = !sha_has_wide || sha_wide_speedup >= 1.5;
  const bool pass = smoke || (sha_ok && eq_ok && gf_ok && wide_ok);
  std::printf(",\"acceptance\":{\"sha256_speedup\":%s,\"sha256_target\":4.0,"
              "\"sha256_wide_speedup\":%s,\"sha256_wide_target\":1.5,"
              "\"event_queue_speedup\":%s,\"event_queue_target\":5.0,"
              "\"avx2_vs_ssse3\":%s,\"avx2_target\":1.5,\"pass\":%s}}\n",
              sha_speedup > 0 ? fmt2(sha_speedup).c_str() : "null",
              sha_wide_speedup > 0 ? fmt2(sha_wide_speedup).c_str() : "null",
              fmt2(eq_speedup).c_str(),
              gf_ratio > 0 ? fmt2(gf_ratio).c_str() : "null", pass ? "true" : "false");

  if (!pass) {
    std::fprintf(stderr,
                 "acceptance %s: sha=%.2fx (>=4 needed: %s) wide=%.2fx (>=1.5: %s) "
                 "eq=%.2fx (>=5) avx2=%.2fx (>=1.5: %s)\n",
                 enforce_acceptance ? "FAILED" : "missed (not enforced)", sha_speedup,
                 sha_hw ? "yes" : "no", sha_wide_speedup, sha_has_wide ? "yes" : "no",
                 eq_speedup, gf_ratio, have_avx2 ? "yes" : "no");
    if (enforce_acceptance) return 1;
  }
  return 0;
}
