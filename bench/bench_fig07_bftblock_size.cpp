// Figure 7: Leopard throughput on varying BFTblock sizes (number of datablock
// links τ per consensus proposal). Small τ means many agreement instances per
// confirmed request, so the leader's per-block vote/proof work bites; the
// upward trend stabilizes once the per-block costs amortize — and larger n
// needs a larger τ to stabilize, exactly the paper's observation.
//
// The n = 600 sweep uses a reduced τ grid: each point simulates tens of
// seconds of cluster time.
#include "bench_common.hpp"

namespace {

using namespace leopard;

bench::TablePrinter& table() {
  static bench::TablePrinter t("Figure 7: Leopard throughput vs BFTblock size (Kreq/s)",
                               {"n", "bftblock", "datablock", "kreqs/s"});
  return t;
}

void BM_LeopardBftBlockSize(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = static_cast<std::uint32_t>(state.range(0));
  cfg.bftblock_links = static_cast<std::uint32_t>(state.range(1));
  cfg.datablock_requests = cfg.n >= 256 ? 4000 : 2000;
  const auto r = bench::run_and_count(state, cfg);
  table().add_row({std::to_string(cfg.n), std::to_string(cfg.bftblock_links),
                   std::to_string(cfg.datablock_requests), bench::fmt(r.throughput_kreqs)});
}

}  // namespace

BENCHMARK(BM_LeopardBftBlockSize)
    ->ArgsProduct({{32, 64, 128}, {1, 2, 5, 10, 50, 100}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LeopardBftBlockSize)
    ->ArgsProduct({{256}, {1, 5, 25, 100}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
