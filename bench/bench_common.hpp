// Shared helpers for the paper-reproduction benches: each bench binary
// regenerates one table or figure of the evaluation (§VI) and prints the
// paper's rows/series. Absolute numbers are simulator-calibrated; the shapes
// (who wins, by what factor, where crossovers fall) are the reproduction
// target (see EXPERIMENTS.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace leopard::bench {

/// Collects rows printed after the google-benchmark run so each binary ends
/// with a paper-style table.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    const std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(std::move(cells));
  }

  ~TablePrinter() { print(); }

  void print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    for (const auto& col : columns_) std::printf("%-16s", col.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      for (const auto& cell : row) std::printf("%-16s", cell.c_str());
      std::printf("\n");
    }
    std::fflush(stdout);
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  mutable std::mutex mu_;
};

inline std::string fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// The paper's Table II batch parameters for Leopard at scale n.
inline void apply_table2_batches(harness::ExperimentConfig& cfg) {
  if (cfg.n <= 64) {
    cfg.datablock_requests = 2000;
    cfg.bftblock_links = 100;
  } else if (cfg.n <= 128) {
    cfg.datablock_requests = 3000;
    cfg.bftblock_links = 300;
  } else if (cfg.n <= 300) {
    cfg.datablock_requests = 4000;
    cfg.bftblock_links = 300;
  } else {
    cfg.datablock_requests = 4000;
    cfg.bftblock_links = 400;
  }
}

/// Runs one experiment inside a benchmark loop and exports headline counters.
inline harness::ExperimentResult run_and_count(benchmark::State& state,
                                               const harness::ExperimentConfig& cfg) {
  harness::ExperimentResult result;
  for (auto _ : state) {
    result = harness::run_experiment(cfg);
  }
  state.counters["kreqs_per_s"] = result.throughput_kreqs;
  state.counters["latency_s"] = result.mean_latency_sec;
  state.counters["leader_send_Mbps"] = result.leader_send_bps / 1e6;
  return result;
}

}  // namespace leopard::bench
