// Table III: bandwidth-utilization breakdown of Leopard at n = 32, by role
// (leader vs non-leader replica), direction, and component. The paper's
// takeaway to reproduce: >96% of the leader's receive bandwidth — and ~50/50
// send/receive at non-leaders — is datablock traffic; votes are <1%. This is
// why measuring only the vote phase says nothing about high-throughput BFT.
#include "bench_common.hpp"

namespace {

using namespace leopard;
constexpr std::size_t kComponents = static_cast<std::size_t>(sim::Component::kCount);

harness::ExperimentResult g_result;

void BM_Table3(benchmark::State& state) {
  harness::ExperimentConfig cfg;
  cfg.n = 32;
  bench::apply_table2_batches(cfg);
  g_result = bench::run_and_count(state, cfg);
}

void print_role(const char* role, const harness::ComponentBandwidth& b) {
  const double total = b.total_send() + b.total_recv();
  if (total <= 0) return;
  std::printf("%s\n", role);
  std::printf("  %-8s%-22s%-12s%s\n", "dir", "component", "%bandwidth", "Mbps");
  for (int dir = 0; dir < 2; ++dir) {
    const auto& lanes = dir == 0 ? b.send_bps : b.recv_bps;
    double dir_sum = 0;
    for (std::size_t c = 0; c < kComponents; ++c) {
      if (lanes[c] <= 0) continue;
      std::printf("  %-8s%-22s%-12s%s\n", dir == 0 ? "Send" : "Receive",
                  sim::component_name(static_cast<sim::Component>(c)),
                  (bench::fmt(100.0 * lanes[c] / total, 2) + "%").c_str(),
                  bench::fmt(lanes[c] / 1e6, 2).c_str());
      dir_sum += lanes[c];
    }
    std::printf("  %-8s%-22s%-12s%s\n", dir == 0 ? "Send" : "Receive", "SUM",
                (bench::fmt(100.0 * dir_sum / total, 2) + "%").c_str(),
                bench::fmt(dir_sum / 1e6, 2).c_str());
  }
}

}  // namespace

BENCHMARK(BM_Table3)->Iterations(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Table III: bandwidth utilization breakdown of Leopard (n = 32) ===\n");
  print_role("Leader", g_result.leader_breakdown);
  print_role("Non-leader replica (average)", g_result.replica_breakdown);
  return 0;
}
