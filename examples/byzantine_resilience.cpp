// Byzantine resilience walkthrough: a 7-replica cluster (f = 2) is pushed
// through the paper's two fault scenarios back to back.
//
//   Phase 1 — selective attack (§IV, §VI-D1): a faulty replica multicasts
//   its datablocks to only the leader and one accomplice; honest replicas
//   discover the gap when a BFTblock links the withheld datablock and
//   recover it from a committee via erasure-coded chunks.
//
//   Phase 2 — leader failure (§VI-D2): the leader goes silent; progress
//   timers fire, timeouts aggregate, and a PBFT-style view-change installs
//   replica 2 as the new leader. Clients re-submit and confirmation resumes.
//
// Watch the printed timeline: liveness dips, the protocol heals, and safety
// (identical logs) holds throughout.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/replica.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocol/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

using namespace leopard;

int main() {
  constexpr std::uint32_t kReplicas = 7;  // f = 2

  sim::Simulator simulator;
  sim::NetworkConfig net_cfg;
  sim::Network network(simulator, net_cfg);
  const crypto::ThresholdScheme scheme(kReplicas, 5, /*seed=*/3);
  core::ProtocolMetrics metrics;

  core::LeopardConfig cfg;
  cfg.n = kReplicas;
  cfg.datablock_requests = 100;
  cfg.bftblock_links = 2;
  cfg.view_timeout = 2 * sim::kSecond;

  std::vector<protocol::SimReplica> handles;
  std::vector<core::LeopardReplica*> replicas;
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    protocol::ProtocolSpec spec;
    spec.config = cfg;
    if (id == 5) {
      // s = 2f: blocks link, f replicas must retrieve...
      spec.byzantine.selective_recipients = 4;
      spec.byzantine.ignore_queries = true;  // ...and it refuses to help retrieval
    }
    if (id == 1) {
      spec.byzantine.crash_at = 4 * sim::kSecond;  // phase 2: view-1 leader goes silent
    }
    handles.push_back(protocol::make_sim_replica(network, metrics, spec, scheme, id));
    replicas.push_back(&handles.back().as<core::LeopardReplica>());
  }

  std::vector<protocol::SimClient> clients;
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    if (id == 1) continue;
    core::ClientConfig client_cfg;
    client_cfg.request_rate = 2000;
    client_cfg.resubmit_timeout = 2 * sim::kSecond;  // re-route around faults
    clients.push_back(protocol::make_sim_client(network, metrics, client_cfg, id, kReplicas,
                                                1, 500 + id));
  }

  network.start_all();

  std::printf("t(s)  confirmed  recovered  view@r0  leader-status\n");
  std::uint64_t last_confirmed = 0;
  for (int second = 1; second <= 12; ++second) {
    simulator.run_until(second * sim::kSecond);
    const auto confirmed = metrics.executed_requests;
    const char* status = second < 4              ? "honest (selective attacker active)"
                         : replicas[0]->view() == 1 ? "CRASHED - timers running"
                                                    : "replaced via view-change";
    std::printf("%4d  %9llu  %9llu  %7u  %s\n", second,
                static_cast<unsigned long long>(confirmed - last_confirmed),
                static_cast<unsigned long long>(metrics.datablocks_recovered),
                replicas[0]->view(), status);
    last_confirmed = confirmed;
  }

  std::printf("\nOutcome:\n");
  std::printf("  view-changes completed : %u\n", metrics.view_changes_completed);
  std::printf("  datablocks recovered   : %llu\n",
              static_cast<unsigned long long>(metrics.datablocks_recovered));
  std::printf("  total confirmed        : %llu requests\n",
              static_cast<unsigned long long>(metrics.executed_requests));

  // Safety across the faults: position-wise log agreement among honest
  // replicas (1 crashed, 5 is the attacker).
  bool consistent = true;
  const auto reference = replicas[0]->confirmed_log();
  for (std::uint32_t id : {2u, 3u, 4u, 6u}) {
    for (const auto& [sn, digest] : replicas[id]->confirmed_log()) {
      const auto it = reference.find(sn);
      if (it != reference.end() && it->second != digest) consistent = false;
    }
  }
  std::printf("  safety (logs agree)    : %s\n", consistent ? "yes" : "NO (bug!)");
  std::printf("  new leader             : replica %u (view %u)\n",
              replicas[0]->view() % kReplicas, replicas[0]->view());
  return consistent && metrics.view_changes_completed >= 1 ? 0 : 1;
}
