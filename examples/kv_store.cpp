// Replicated key-value store on top of Leopard: the "decentralized
// application" workload the paper's introduction motivates. Each client
// request carries a serialized PUT command; every replica applies committed
// commands through the execution handler, in the total order the protocol
// decides. At the end, all replicas must hold byte-identical stores — even
// with a Byzantine replica mounting the selective-dissemination attack.
//
// Demonstrates: the execution-handler API, real (non-synthetic) payloads,
// and state-machine consistency under faults.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/replica.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocol/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

using namespace leopard;

namespace {

/// The replicated state machine: an ordered map applied via PUT commands.
class KvStore {
 public:
  /// Command wire format: key string, value string.
  static util::Bytes encode_put(const std::string& key, const std::string& value) {
    util::ByteWriter w;
    w.str(key);
    w.str(value);
    return w.take();
  }

  void apply(const proto::Request& request) {
    if (request.payload.empty()) return;  // not a KV command
    util::ByteReader r(request.payload);
    const auto key = r.str();
    const auto value = r.str();
    store_[key] = value;
    ++applied_;
  }

  [[nodiscard]] crypto::Digest fingerprint() const {
    util::ByteWriter w;
    for (const auto& [k, v] : store_) {
      w.str(k);
      w.str(v);
    }
    return crypto::Digest::of(w.bytes());
  }

  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] std::uint64_t applied() const { return applied_; }
  [[nodiscard]] const std::map<std::string, std::string>& contents() const { return store_; }

 private:
  std::map<std::string, std::string> store_;
  std::uint64_t applied_ = 0;
};

/// A client that issues PUT commands to its assigned replica.
class KvClient final : public sim::Node {
 public:
  KvClient(sim::Network& net, sim::NodeId target, std::uint32_t writes, std::uint64_t seed)
      : net_(net), target_(target), writes_(writes), rng_(seed) {}

  void set_node_id(sim::NodeId id) { self_ = id; }

  void start() override { issue_next(); }

  void on_message(sim::NodeId, const sim::PayloadPtr& msg) override {
    if (const auto ack = std::dynamic_pointer_cast<const proto::AckMsg>(msg)) {
      acked_ += ack->seqs.size();
    }
  }

  [[nodiscard]] std::uint64_t acked() const { return acked_; }

 private:
  void issue_next() {
    if (issued_ >= writes_) return;
    const auto key = "user:" + std::to_string(rng_.uniform(64));
    const auto value = "balance=" + std::to_string(rng_.uniform(100000));

    proto::Request req;
    req.client_id = self_;
    req.seq = issued_++;
    req.payload = KvStore::encode_put(key, value);
    req.payload_size = static_cast<std::uint32_t>(req.payload.size());
    req.submitted_at = net_.sim().now();
    net_.send(self_, target_, std::make_shared<proto::ClientRequestMsg>(std::move(req)));

    net_.sim().schedule_after(sim::from_seconds(rng_.exponential(1.0 / 2000.0)),
                              [this] { issue_next(); });
  }

  sim::Network& net_;
  sim::NodeId self_ = 0;
  sim::NodeId target_;
  std::uint32_t writes_;
  std::uint64_t issued_ = 0;
  std::uint64_t acked_ = 0;
  util::Rng rng_;
};

}  // namespace

int main() {
  constexpr std::uint32_t kReplicas = 7;  // f = 2

  sim::Simulator simulator;
  sim::NetworkConfig net_cfg;
  sim::Network network(simulator, net_cfg);
  const crypto::ThresholdScheme scheme(kReplicas, 5, /*seed=*/7);
  core::ProtocolMetrics metrics;

  core::LeopardConfig cfg;
  cfg.n = kReplicas;
  cfg.datablock_requests = 50;
  cfg.bftblock_links = 2;
  cfg.datablock_max_wait = 50 * sim::kMillisecond;

  // One KV state machine per replica, applied via the execution handler.
  std::vector<KvStore> stores(kReplicas);
  std::vector<protocol::SimReplica> replicas;
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    protocol::ProtocolSpec spec;
    spec.config = cfg;
    // s = 2f: linked, yet f replicas must retrieve
    if (id == 6) spec.byzantine.selective_recipients = 4;
    replicas.push_back(protocol::make_sim_replica(network, metrics, spec, scheme, id));
    replicas.back().as<core::LeopardReplica>().set_execution_handler(
        [&stores, id](const proto::Request& r) { stores[id].apply(r); });
  }

  std::vector<std::unique_ptr<KvClient>> clients;
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    if (id == 1) continue;  // view-1 leader takes no client traffic
    auto client = std::make_unique<KvClient>(network, id, /*writes=*/2000, 900 + id);
    client->set_node_id(network.add_node(client.get(), /*metered=*/false));
    clients.push_back(std::move(client));
  }

  network.start_all();
  simulator.run_until(6 * sim::kSecond);

  std::printf("Replicated KV store on Leopard (n = %u, one selective attacker)\n", kReplicas);
  std::uint64_t total_acked = 0;
  for (const auto& c : clients) total_acked += c->acked();
  std::printf("  PUTs acknowledged: %llu\n", static_cast<unsigned long long>(total_acked));
  std::printf("  retrievals performed: %llu (attacker-withheld datablocks recovered)\n",
              static_cast<unsigned long long>(metrics.datablocks_recovered));

  std::printf("\nPer-replica store state:\n");
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    std::printf("  replica %u: %zu keys, %llu commands applied, fingerprint %s\n", id,
                stores[id].size(), static_cast<unsigned long long>(stores[id].applied()),
                stores[id].fingerprint().short_hex().c_str());
  }

  // All honest replicas that executed the same prefix must agree. Compare
  // replicas at equal applied counts.
  bool consistent = true;
  for (std::uint32_t a = 0; a < kReplicas; ++a) {
    for (std::uint32_t b = a + 1; b < kReplicas; ++b) {
      if (stores[a].applied() == stores[b].applied() &&
          !(stores[a].fingerprint() == stores[b].fingerprint())) {
        consistent = false;
      }
    }
  }
  std::printf("\nstores consistent: %s\n", consistent ? "yes" : "NO (bug!)");

  // Show a sample of the agreed state.
  std::printf("\nsample keys from replica 0:\n");
  int shown = 0;
  for (const auto& [k, v] : stores[0].contents()) {
    std::printf("  %-12s = %s\n", k.c_str(), v.c_str());
    if (++shown == 5) break;
  }
  return consistent ? 0 : 1;
}
