// Scaling survey: a compact, runnable version of the paper's headline
// comparison (Fig. 9) using the experiment harness — Leopard vs HotStuff
// throughput as the cluster grows, with the closed-form scaling-factor
// prediction printed alongside the simulation.
//
// Scales are kept modest so the example finishes in well under a minute; run
// bench_fig09_scalability for the full 600-replica sweep.
#include <cstdio>

#include "analysis/cost_model.hpp"
#include "harness/experiment.hpp"

using namespace leopard;

int main() {
  std::printf("Leopard vs HotStuff while the cluster grows (payload 128 B)\n");
  std::printf("%-6s%-18s%-18s%-12s%-14s\n", "n", "Leopard Kreq/s", "HotStuff Kreq/s",
              "ratio", "SF_hs (model)");

  for (const std::uint32_t n : {8u, 16u, 32u, 64u, 96u}) {
    harness::ExperimentConfig leo;
    leo.n = n;
    leo.datablock_requests = 1000;
    leo.bftblock_links = 20;

    harness::ExperimentConfig hs;
    hs.protocol = harness::Protocol::kHotStuff;
    hs.n = n;
    hs.batch_size = 800;
    hs.warmup = sim::kSecond;
    hs.measure = 3 * sim::kSecond;

    const auto leo_result = harness::run_experiment(leo);
    const auto hs_result = harness::run_experiment(hs);
    const double ratio = hs_result.throughput_kreqs > 0
                             ? leo_result.throughput_kreqs / hs_result.throughput_kreqs
                             : 0;
    std::printf("%-6u%-18.1f%-18.1f%-12.2f%-14.1f\n", n, leo_result.throughput_kreqs,
                hs_result.throughput_kreqs, ratio,
                analysis::leader_based_scaling_factor(n, 800, true));
  }

  std::printf(
      "\nReading the table: HotStuff's scaling factor (rightmost column) grows\n"
      "linearly with n, so its throughput falls as ~1/n once the leader\n"
      "saturates; Leopard's scaling factor is a constant ~2, so its row stays\n"
      "flat and the ratio keeps widening — the paper's Fig. 9 in miniature.\n");
  return 0;
}
