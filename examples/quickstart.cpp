// Quickstart: the smallest possible Leopard deployment — a 4-replica cluster
// (f = 1), three client groups, two seconds of simulated traffic. Shows how
// to wire the public API together and what the protocol produces: a growing
// log of confirmed BFTblocks, consistent across replicas, with client acks.
//
// Build & run:   cmake --build build && ./build/examples/example_quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/replica.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocol/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

using namespace leopard;

int main() {
  constexpr std::uint32_t kReplicas = 4;  // n = 3f + 1 with f = 1

  // 1. The simulation substrate: event clock + network with NIC/CPU models.
  sim::Simulator simulator;
  sim::NetworkConfig net_cfg;  // defaults: 9.8 Gbps NICs, 250 us propagation
  sim::Network network(simulator, net_cfg);

  // 2. Shared threshold-signature setup (2f+1 = 3 of 4).
  const crypto::ThresholdScheme scheme(kReplicas, 3, /*seed=*/42);

  // 3. Metrics sink shared by all parties.
  core::ProtocolMetrics metrics;

  // 4. Four Leopard replicas: sans-I/O protocol cores hosted by SimEnv
  //    adapters. make_sim_replica registers each with the network (replica
  //    ids must equal network node ids, so replicas register first).
  core::LeopardConfig cfg;
  cfg.n = kReplicas;
  cfg.datablock_requests = 100;  // small batches: this is a demo, not a bench
  cfg.bftblock_links = 2;
  protocol::ProtocolSpec spec;
  spec.config = cfg;
  std::vector<protocol::SimReplica> replicas;
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    replicas.push_back(protocol::make_sim_replica(network, metrics, spec, scheme, id));
  }

  // 5. Clients submit to non-leader replicas (view 1's leader is replica 1).
  std::vector<protocol::SimClient> clients;
  for (std::uint32_t id = 0; id < kReplicas; ++id) {
    if (id == 1) continue;
    core::ClientConfig client_cfg;
    client_cfg.request_rate = 5000;  // requests/s to this replica
    client_cfg.payload_size = 128;
    clients.push_back(protocol::make_sim_client(network, metrics, client_cfg, id, kReplicas,
                                                /*avoid=*/1, /*seed=*/100 + id));
  }

  // 6. Run two seconds of cluster time.
  network.start_all();
  simulator.run_until(2 * sim::kSecond);

  // 7. What happened?
  std::printf("Leopard quickstart (n = %u, f = 1)\n", kReplicas);
  std::printf("  simulated time        : %.2f s\n", sim::to_seconds(simulator.now()));
  std::printf("  requests confirmed    : %llu\n",
              static_cast<unsigned long long>(metrics.executed_requests));
  std::printf("  requests acknowledged : %llu\n",
              static_cast<unsigned long long>(metrics.acked_requests));
  std::printf("  mean latency          : %.1f ms\n", metrics.mean_latency_sec() * 1e3);

  std::printf("\nPer-replica view of the log:\n");
  for (const auto& handle : replicas) {
    const auto& replica = handle.as<core::LeopardReplica>();
    std::printf("  replica %u: executed through sn=%llu, state digest %s\n",
                replica.id(),
                static_cast<unsigned long long>(replica.executed_through()),
                replica.state_digest().short_hex().c_str());
  }

  // Safety check: every pair of replicas agrees on every confirmed position.
  const auto& reference = replicas[0].as<core::LeopardReplica>().confirmed_log();
  bool consistent = true;
  for (const auto& handle : replicas) {
    for (const auto& [sn, digest] : handle.as<core::LeopardReplica>().confirmed_log()) {
      const auto it = reference.find(sn);
      if (it != reference.end() && it->second != digest) consistent = false;
    }
  }
  std::printf("\nlogs consistent across replicas: %s\n", consistent ? "yes" : "NO (bug!)");
  return consistent ? 0 : 1;
}
