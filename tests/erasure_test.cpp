// GF(2^8) field axioms and Reed-Solomon any-k-of-n reconstruction, including
// the exhaustive small-parameter sweeps backing Leopard's retrieval.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace le = leopard::erasure;
namespace lu = leopard::util;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(le::Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(le::Gf256::add(0xFF, 0xFF), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(le::Gf256::mul(static_cast<le::Gf>(a), 1), a);
    EXPECT_EQ(le::Gf256::mul(static_cast<le::Gf>(a), 0), 0);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  lu::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<le::Gf>(rng.uniform(256));
    const auto b = static_cast<le::Gf>(rng.uniform(256));
    EXPECT_EQ(le::Gf256::mul(a, b), le::Gf256::mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  lu::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<le::Gf>(rng.uniform(256));
    const auto b = static_cast<le::Gf>(rng.uniform(256));
    const auto c = static_cast<le::Gf>(rng.uniform(256));
    EXPECT_EQ(le::Gf256::mul(a, le::Gf256::mul(b, c)),
              le::Gf256::mul(le::Gf256::mul(a, b), c));
  }
}

TEST(Gf256, DistributesOverAddition) {
  lu::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<le::Gf>(rng.uniform(256));
    const auto b = static_cast<le::Gf>(rng.uniform(256));
    const auto c = static_cast<le::Gf>(rng.uniform(256));
    EXPECT_EQ(le::Gf256::mul(a, le::Gf256::add(b, c)),
              le::Gf256::add(le::Gf256::mul(a, b), le::Gf256::mul(a, c)));
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = le::Gf256::inv(static_cast<le::Gf>(a));
    EXPECT_EQ(le::Gf256::mul(static_cast<le::Gf>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  lu::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<le::Gf>(rng.uniform(256));
    const auto b = static_cast<le::Gf>(1 + rng.uniform(255));
    EXPECT_EQ(le::Gf256::div(le::Gf256::mul(a, b), b), a);
  }
}

TEST(Gf256, ZeroDivisionAndInverseThrow) {
  EXPECT_THROW(le::Gf256::div(1, 0), lu::ContractViolation);
  EXPECT_THROW(le::Gf256::inv(0), lu::ContractViolation);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // exp must cycle with period exactly 255.
  EXPECT_EQ(le::Gf256::exp(0), 1);
  EXPECT_EQ(le::Gf256::exp(255), 1);
  for (int i = 1; i < 255; ++i) EXPECT_NE(le::Gf256::exp(i), 1) << i;
}

TEST(InvertMatrix, IdentityInvertsToItself) {
  std::vector<std::vector<le::Gf>> m = {{1, 0}, {0, 1}};
  ASSERT_TRUE(le::invert_matrix(m));
  EXPECT_EQ(m[0][0], 1);
  EXPECT_EQ(m[1][1], 1);
  EXPECT_EQ(m[0][1], 0);
}

TEST(InvertMatrix, SingularMatrixRejected) {
  std::vector<std::vector<le::Gf>> m = {{3, 3}, {3, 3}};
  EXPECT_FALSE(le::invert_matrix(m));
}

TEST(InvertMatrix, RandomMatricesRoundTrip) {
  lu::Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = 1 + rng.uniform(8);
    std::vector<std::vector<le::Gf>> m(k, std::vector<le::Gf>(k));
    for (auto& row : m) {
      for (auto& v : row) v = static_cast<le::Gf>(rng.uniform(256));
    }
    auto inv = m;
    if (!le::invert_matrix(inv)) continue;  // singular draw, skip
    // m * inv must be identity.
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        le::Gf acc = 0;
        for (std::size_t t = 0; t < k; ++t) {
          acc = le::Gf256::add(acc, le::Gf256::mul(m[i][t], inv[t][j]));
        }
        EXPECT_EQ(acc, i == j ? 1 : 0);
      }
    }
  }
}

namespace {
lu::Bytes random_message(std::size_t size, std::uint64_t seed) {
  lu::Bytes msg(size);
  lu::Rng rng(seed);
  rng.fill(msg.data(), msg.size());
  return msg;
}
}  // namespace

TEST(ReedSolomon, RejectsInvalidParameters) {
  EXPECT_THROW(le::ReedSolomon(0, 4), lu::ContractViolation);
  EXPECT_THROW(le::ReedSolomon(5, 4), lu::ContractViolation);
  EXPECT_THROW(le::ReedSolomon(10, 256), lu::ContractViolation);
}

TEST(ReedSolomon, SystematicPrefixHoldsData) {
  // The first k shards concatenated must contain header+message verbatim.
  const le::ReedSolomon rs(3, 7);
  const auto msg = random_message(100, 1);
  const auto shards = rs.encode(msg);
  ASSERT_EQ(shards.size(), 7u);
  lu::Bytes joined;
  for (std::uint32_t i = 0; i < 3; ++i) {
    joined.insert(joined.end(), shards[i].data.begin(), shards[i].data.end());
  }
  // Skip the 4-byte length header.
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), joined.begin() + 4));
}

TEST(ReedSolomon, DecodesFromDataShardsOnly) {
  const le::ReedSolomon rs(4, 10);
  const auto msg = random_message(1000, 2);
  auto shards = rs.encode(msg);
  shards.resize(4);  // only systematic shards
  EXPECT_EQ(rs.decode(shards), msg);
}

TEST(ReedSolomon, DecodesFromParityShardsOnly) {
  const le::ReedSolomon rs(4, 10);
  const auto msg = random_message(777, 3);
  const auto shards = rs.encode(msg);
  const std::vector<le::Shard> parity(shards.begin() + 6, shards.begin() + 10);
  EXPECT_EQ(rs.decode(parity), msg);
}

TEST(ReedSolomon, EveryKSubsetDecodes) {
  // Exhaustive over all C(6,3) = 20 subsets.
  const le::ReedSolomon rs(3, 6);
  const auto msg = random_message(200, 4);
  const auto shards = rs.encode(msg);
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = a + 1; b < 6; ++b) {
      for (std::size_t c = b + 1; c < 6; ++c) {
        const std::vector<le::Shard> subset = {shards[a], shards[b], shards[c]};
        EXPECT_EQ(rs.decode(subset), msg) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(ReedSolomon, InsufficientShardsFail) {
  const le::ReedSolomon rs(4, 8);
  const auto msg = random_message(100, 5);
  auto shards = rs.encode(msg);
  shards.resize(3);
  EXPECT_FALSE(rs.decode(shards).has_value());
}

TEST(ReedSolomon, DuplicateShardsDoNotCount) {
  const le::ReedSolomon rs(3, 6);
  const auto msg = random_message(64, 6);
  const auto shards = rs.encode(msg);
  const std::vector<le::Shard> dup = {shards[0], shards[0], shards[0]};
  EXPECT_FALSE(rs.decode(dup).has_value());
}

TEST(ReedSolomon, OutOfRangeShardIndexIgnored) {
  const le::ReedSolomon rs(2, 4);
  const auto msg = random_message(64, 7);
  auto shards = rs.encode(msg);
  shards[0].index = 99;
  const std::vector<le::Shard> picked = {shards[0], shards[1]};
  EXPECT_FALSE(rs.decode(picked).has_value());
}

TEST(ReedSolomon, EmptyMessageRoundTrips) {
  const le::ReedSolomon rs(3, 5);
  const auto shards = rs.encode(lu::Bytes{});
  EXPECT_EQ(rs.decode(shards), lu::Bytes{});
}

TEST(ReedSolomon, SingleByteRoundTrips) {
  const le::ReedSolomon rs(5, 9);
  const lu::Bytes msg = {0x42};
  EXPECT_EQ(rs.decode(rs.encode(msg)), msg);
}

TEST(ReedSolomon, KEqualsOneReplicates) {
  const le::ReedSolomon rs(1, 4);
  const auto msg = random_message(50, 8);
  const auto shards = rs.encode(msg);
  for (const auto& s : shards) {
    EXPECT_EQ(rs.decode(std::vector<le::Shard>{s}), msg) << "shard " << s.index;
  }
}

TEST(ReedSolomon, KEqualsNIsPlainSplit) {
  const le::ReedSolomon rs(4, 4);
  const auto msg = random_message(128, 9);
  EXPECT_EQ(rs.decode(rs.encode(msg)), msg);
}

TEST(ReedSolomon, ShardSizeMatchesFormula) {
  const le::ReedSolomon rs(4, 8);
  // α/(f+1) scaling from §V: shard carries ceil((len+4)/k) bytes.
  EXPECT_EQ(rs.shard_size(0), 1u);
  EXPECT_EQ(rs.shard_size(12), 4u);
  EXPECT_EQ(rs.shard_size(13), 5u);
  const auto shards = rs.encode(random_message(13, 10));
  for (const auto& s : shards) EXPECT_EQ(s.data.size(), 5u);
}

// Property sweep: random erasure patterns across (k, n) pairs, message sizes
// spanning sub-shard to multi-KB, always recover from any k survivors.
class RsSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, std::size_t>> {};

TEST_P(RsSweep, RandomErasuresRecover) {
  const auto [k, n, msg_size] = GetParam();
  const le::ReedSolomon rs(k, n);
  const auto msg = random_message(msg_size, k * 1000 + n);
  const auto shards = rs.encode(msg);

  lu::Rng rng(msg_size + 17);
  for (int trial = 0; trial < 10; ++trial) {
    // Choose a random k-subset of survivors.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform(i)]);
    }
    std::vector<le::Shard> survivors;
    for (std::uint32_t i = 0; i < k; ++i) survivors.push_back(shards[order[i]]);
    EXPECT_EQ(rs.decode(survivors), msg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, RsSweep,
    ::testing::Values(std::make_tuple(2u, 4u, std::size_t{100}),
                      std::make_tuple(3u, 10u, std::size_t{1000}),
                      std::make_tuple(5u, 16u, std::size_t{4096}),
                      std::make_tuple(11u, 32u, std::size_t{2048}),
                      std::make_tuple(22u, 64u, std::size_t{8192}),
                      std::make_tuple(43u, 128u, std::size_t{10000}),
                      std::make_tuple(1u, 7u, std::size_t{333}),
                      std::make_tuple(85u, 255u, std::size_t{512})));
