// Loopback deployment integration: forks a 4-node `leopard_node` cluster
// (one process per replica, real TCP on 127.0.0.1) plus the closed-loop
// client driver, for all three protocol specs. Asserts end-to-end commits,
// clean shutdown, and identical Execute-fold digests across replicas — and,
// for Leopard, that the cluster survives one killed-and-restarted follower.
//
// This is also the CI loopback smoke job: the whole test runs under ASan in
// the sanitize workflow.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef LEOPARD_NODE_BIN
#error "CMake must define LEOPARD_NODE_BIN (path to the leopard_node binary)"
#endif

namespace {

/// Picks `count` distinct free ports, holding every probe socket open until
/// all are chosen so the kernel cannot hand the same ephemeral port twice.
/// (The window between closing and the daemon rebinding is still racy in
/// principle, but just-released ephemeral ports are not reused eagerly.)
std::vector<std::uint16_t> pick_free_ports(std::size_t count) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

std::string temp_dir() {
  char tmpl[] = "/tmp/leopard_cluster_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

std::string write_manifest(const std::string& dir, const std::string& protocol,
                           const std::vector<std::uint16_t>& ports,
                           std::uint32_t shards = 1) {
  const auto path = dir + "/cluster.conf";
  std::ofstream out(path);
  out << "protocol " << protocol << "\n"
      << "n " << ports.size() << "\n"
      << "seed 7\n"
      << "payload_size 64\n"
      << "datablock_requests 50\n"
      << "bftblock_links 4\n"
      << "max_parallel_instances 40\n"
      << "datablock_max_wait_ms 20\n"
      << "proposal_max_wait_ms 10\n"
      << "retrieval_timeout_ms 20\n"
      << "view_timeout_ms 60000\n"   // generous: no spurious view changes under ASan
      << "batch_size 50\n"
      << "shards " << shards << "\n";
  for (std::size_t id = 0; id < ports.size(); ++id) {
    out << "node " << id << " 127.0.0.1:" << ports[id] << "\n";
  }
  return path;
}

pid_t spawn_node(const std::string& manifest, const std::string& out_path,
                 std::vector<std::string> extra_args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: redirect stdout+stderr to the report file and exec the daemon.
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ::dup2(fd, 1);
  ::dup2(fd, 2);
  ::close(fd);
  std::vector<std::string> args = {LEOPARD_NODE_BIN, "--manifest", manifest};
  for (auto& a : extra_args) args.push_back(std::move(a));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(LEOPARD_NODE_BIN, argv.data());
  std::perror("execv leopard_node");
  ::_exit(127);
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/// Parses a key=value report (whitespace-separated tokens across lines).
std::map<std::string, std::string> parse_report(const std::string& path) {
  std::ifstream in(path);
  std::map<std::string, std::string> kv;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

/// Kills every tracked pid on scope exit so a failed ASSERT cannot leak a
/// daemon into later tests.
struct ReplicaSet {
  std::vector<pid_t> pids;       // index = replica id; -1 when not running
  std::vector<std::string> outs;

  ~ReplicaSet() {
    for (const auto pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const auto pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  /// `data_dir` non-empty enables the durable store (and boot recovery when
  /// the directory already holds a WAL from a previous incarnation).
  /// `extra_args` go to the daemon verbatim (e.g. {"--io-threads", "2"}).
  void start(std::size_t id, const std::string& manifest, const std::string& dir,
             const std::string& data_dir = "",
             std::vector<std::string> extra_args = {}) {
    outs.resize(std::max(outs.size(), id + 1));
    pids.resize(std::max(pids.size(), id + 1), -1);
    outs[id] = dir + "/replica" + std::to_string(id) + "_" +
               std::to_string(::getpid()) + "_" + std::to_string(next_out_++) + ".out";
    std::vector<std::string> args = {"--id", std::to_string(id)};
    if (!data_dir.empty()) {
      args.push_back("--data-dir");
      args.push_back(data_dir);
    }
    for (auto& a : extra_args) args.push_back(std::move(a));
    pids[id] = spawn_node(manifest, outs[id], std::move(args));
  }

  /// SIGTERM + reap: the daemon prints its report on the way out.
  int stop(std::size_t id) {
    ::kill(pids[id], SIGTERM);
    const int rc = wait_exit(pids[id]);
    pids[id] = -1;
    return rc;
  }

  void kill_hard(std::size_t id) {
    ::kill(pids[id], SIGKILL);
    ::waitpid(pids[id], nullptr, 0);
    pids[id] = -1;
  }

 private:
  int next_out_ = 0;
};

/// Blocking one-shot HTTP GET against a daemon's observability endpoint.
/// Empty string on connect/read failure (caller retries — the endpoint comes
/// up with the event loop).
std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\nHost: t\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) != static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[8192];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Body after the HTTP header; empty when the response is not a 200.
std::string http_body(const std::string& response) {
  if (response.find("200") == std::string::npos) return "";
  const auto sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

/// Value of an unlabeled series in Prometheus exposition text, -1 if absent.
double scrape_value(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) return std::stod(line.substr(name.size() + 1));
  }
  return -1.0;
}

int run_client(const std::string& manifest, const std::string& out_path, std::uint32_t id,
               std::uint32_t requests, std::uint32_t resubmit_ms = 1000) {
  const pid_t pid = spawn_node(manifest, out_path,
                               {"--client", "--id", std::to_string(id), "--requests",
                                std::to_string(requests), "--window", "32", "--timeout",
                                "90", "--resubmit-ms", std::to_string(resubmit_ms)});
  return wait_exit(pid);
}

void expect_cluster_commits(const std::string& protocol) {
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, protocol, ports);

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    // Every replica persists: the commit path runs through the WAL in all
    // protocol specs, not just the crash-recovery test.
    cluster.start(id, manifest, dir, dir + "/data" + std::to_string(id));
  }

  const auto client_out = dir + "/client.out";
  ASSERT_EQ(run_client(manifest, client_out, 100, 300), 0)
      << "client did not get every request acked: " << protocol;
  const auto client = parse_report(client_out);
  EXPECT_EQ(client.at("acked"), "300");

  // The final ack proves SOME replica executed; give the others a beat to
  // drain the last commit-carrying broadcasts before the digest snapshot
  // (a scheduler stall under ASan could otherwise flake the comparison).
  ::usleep(500 * 1000);

  // Clean shutdown: every replica exits 0 on SIGTERM and reports a digest.
  std::vector<std::map<std::string, std::string>> reports;
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.stop(id), 0) << "replica " << id << " did not exit cleanly";
    reports.push_back(parse_report(cluster.outs[id]));
  }
  for (std::size_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged (" << protocol << ")";
    EXPECT_GE(std::stoull(reports[id].at("executed_requests")), 300u) << "replica " << id;
    EXPECT_EQ(reports[id].at("decode_errors"), "0") << "replica " << id;
    // The WAL recorded the executed stream, cleanly.
    EXPECT_GT(std::stoull(reports[id].at("store_entries")), 0u) << "replica " << id;
    EXPECT_EQ(reports[id].at("store_append_errors"), "0") << "replica " << id;
    EXPECT_EQ(reports[id].at("sync_live"), "1") << "replica " << id;
  }
  if (protocol == "leopard") {
    for (std::size_t id = 1; id < 4; ++id) {
      EXPECT_EQ(reports[id].at("state_digest"), reports[0].at("state_digest"));
    }
  }
}

}  // namespace

TEST(SocketCluster, LeopardCommitsEndToEnd) { expect_cluster_commits("leopard"); }

TEST(SocketCluster, HotStuffCommitsEndToEnd) { expect_cluster_commits("hotstuff"); }

TEST(SocketCluster, PbftCommitsEndToEnd) { expect_cluster_commits("pbft"); }

TEST(SocketCluster, LiveObservabilityEndpointsServeAllThreeRoutes) {
  // End-to-end scrape: every replica runs with --metrics-addr and must answer
  // /healthz, /metrics (well-formed Prometheus text), and /statusz (JSON)
  // while committing. The executed-height gauge must be monotone across
  // scrapes and reach the client's total.
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(8);
  const std::vector<std::uint16_t> node_ports(ports.begin(), ports.begin() + 4);
  const std::vector<std::uint16_t> obs_ports(ports.begin() + 4, ports.end());
  const auto manifest = write_manifest(dir, "leopard", node_ports);

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    cluster.start(id, manifest, dir, dir + "/data" + std::to_string(id),
                  {"--metrics-addr", "127.0.0.1:" + std::to_string(obs_ports[id]),
                   "--trace-sample", "4"});
  }

  // Health gate: all four endpoints answer before any traffic flows.
  for (std::size_t id = 0; id < 4; ++id) {
    std::string health;
    for (int attempt = 0; attempt < 100 && health.find("ok") == std::string::npos;
         ++attempt) {
      health = http_body(http_get(obs_ports[id], "/healthz"));
      if (health.empty()) ::usleep(100 * 1000);
    }
    ASSERT_NE(health.find("ok"), std::string::npos) << "replica " << id << " unhealthy";
  }

  const auto before = scrape_value(http_body(http_get(obs_ports[0], "/metrics")),
                                   "leopard_executed_through");
  ASSERT_GE(before, 0.0) << "leopard_executed_through gauge missing";

  const auto client_out = dir + "/client.out";
  ASSERT_EQ(run_client(manifest, client_out, 100, 300), 0);
  EXPECT_EQ(parse_report(client_out).at("acked"), "300");

  for (std::size_t id = 0; id < 4; ++id) {
    const auto body = http_body(http_get(obs_ports[id], "/metrics"));
    ASSERT_FALSE(body.empty()) << "replica " << id << " /metrics not a 200";

    // Prometheus well-formedness: every line is a comment or "series value",
    // every series was announced by a preceding # TYPE for its family.
    std::set<std::string> typed;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream ts(line.substr(7));
        std::string fam;
        ts >> fam;
        typed.insert(fam);
        continue;
      }
      if (line[0] == '#') {
        EXPECT_EQ(line.rfind("# HELP ", 0), 0u) << "stray comment: " << line;
        continue;
      }
      const auto sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      EXPECT_NO_THROW(std::stod(line.substr(sp + 1))) << line;
      auto series = line.substr(0, sp);
      const auto brace = series.find('{');
      if (brace != std::string::npos) series = series.substr(0, brace);
      // Histogram sample suffixes belong to the histogram family.
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s = suffix;
        if (series.size() > s.size() &&
            series.compare(series.size() - s.size(), s.size(), s) == 0 &&
            typed.contains(series.substr(0, series.size() - s.size()))) {
          series = series.substr(0, series.size() - s.size());
          break;
        }
      }
      EXPECT_TRUE(typed.contains(series)) << "series without # TYPE: " << line;
    }

    // Transport counters are live on every replica.
    EXPECT_GT(scrape_value(body, "leopard_net_frames_sent_total"), 0.0) << id;
    EXPECT_GT(scrape_value(body, "leopard_net_bytes_received_total"), 0.0) << id;
    EXPECT_EQ(scrape_value(body, "leopard_safety_violation"), 0.0) << id;

    // /statusz is JSON with the node identity and the metrics dump.
    const auto statusz = http_body(http_get(obs_ports[id], "/statusz?traces=1"));
    ASSERT_FALSE(statusz.empty()) << "replica " << id << " /statusz not a 200";
    EXPECT_EQ(statusz.front(), '{') << id;
    EXPECT_NE(statusz.find("\"role\":\"replica\""), std::string::npos) << id;
    EXPECT_NE(statusz.find("\"exec_digest\":\""), std::string::npos) << id;
    EXPECT_NE(statusz.find("\"peers\":["), std::string::npos) << id;
    EXPECT_NE(statusz.find("\"metrics\":{"), std::string::npos) << id;
    EXPECT_NE(statusz.find("\"traces\":{"), std::string::npos) << id;
    EXPECT_EQ(std::count(statusz.begin(), statusz.end(), '{'),
              std::count(statusz.begin(), statusz.end(), '}'))
        << "unbalanced JSON braces (replica " << id << ")";
  }

  // Monotone executed height: the post-commit scrape dominates the pre-commit
  // one and shows real progress.
  const auto after = scrape_value(http_body(http_get(obs_ports[0], "/metrics")),
                                  "leopard_executed_through");
  EXPECT_GE(after, before);
  EXPECT_GT(after, 0.0);
  EXPECT_GE(scrape_value(http_body(http_get(obs_ports[0], "/metrics")),
                         "leopard_executed_requests_total"),
            300.0)
      << "designated observer undercounted executions";

  for (std::size_t id = 0; id < 4; ++id) EXPECT_EQ(cluster.stop(id), 0) << id;
}

// Two protocol shards multiplexed over the same TCP connections: every
// replica must agree per shard (shardK_digest) AND on the merged global
// stream (exec_digest), with every client request committed through one of
// the shards.
TEST(SocketCluster, ShardedLeopardCommitsEndToEnd) {
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, "leopard", ports, /*shards=*/2);

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    cluster.start(id, manifest, dir, dir + "/data" + std::to_string(id));
  }

  const auto client_out = dir + "/client.out";
  ASSERT_EQ(run_client(manifest, client_out, 100, 300), 0)
      << "sharded client did not get every request acked";
  const auto client = parse_report(client_out);
  EXPECT_EQ(client.at("acked"), "300");
  EXPECT_EQ(client.at("shards"), "2");

  // Let the stall ticks flush the trailing (unproven) rounds through no-op
  // fill so every real commit reaches the merged stream before the snapshot.
  ::usleep(1000 * 1000);

  std::vector<std::map<std::string, std::string>> reports;
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.stop(id), 0) << "replica " << id << " did not exit cleanly";
    reports.push_back(parse_report(cluster.outs[id]));
  }
  for (std::size_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("shards"), "2") << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged on the merged stream";
    for (const auto* key : {"shard0_digest", "shard1_digest"}) {
      ASSERT_TRUE(reports[id].contains(key)) << "replica " << id;
      EXPECT_EQ(reports[id].at(key), reports[0].at(key))
          << "replica " << id << " diverged on " << key;
    }
    // All 300 real requests merged (no-op filler may add more on top).
    EXPECT_GE(std::stoull(reports[id].at("executed_requests")), 300u) << "replica " << id;
    // BOTH shards committed real traffic: the hash partition actually split
    // the load across instances.
    EXPECT_GT(std::stoull(reports[id].at("shard0_blocks")), 0u) << "replica " << id;
    EXPECT_GT(std::stoull(reports[id].at("shard1_blocks")), 0u) << "replica " << id;
    EXPECT_EQ(reports[id].at("decode_errors"), "0") << "replica " << id;
    EXPECT_EQ(reports[id].at("store_append_errors"), "0") << "replica " << id;
    EXPECT_EQ(reports[id].at("sync_live"), "1") << "replica " << id;
  }
}

// The sharded spec again, but with every replica running its shard cores on
// per-instance io-threads (--io-threads 2): same per-shard digests, same
// merged exec_digest, zero decode errors. Agreement across the whole cluster
// is the determinism proof for the worker handoff — the Sequencer merges
// per-shard streams identically no matter which thread ran the core.
TEST(SocketCluster, ShardedLeopardCommitsWithIoThreads) {
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, "leopard", ports, /*shards=*/2);

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    cluster.start(id, manifest, dir, dir + "/data" + std::to_string(id),
                  {"--io-threads", "2"});
  }

  const auto client_out = dir + "/client.out";
  ASSERT_EQ(run_client(manifest, client_out, 100, 300), 0)
      << "sharded client did not get every request acked under --io-threads";
  EXPECT_EQ(parse_report(client_out).at("acked"), "300");

  ::usleep(1000 * 1000);

  std::vector<std::map<std::string, std::string>> reports;
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.stop(id), 0) << "replica " << id << " did not exit cleanly";
    reports.push_back(parse_report(cluster.outs[id]));
  }
  for (std::size_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("io_threads"), "2") << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged on the merged stream";
    for (const auto* key : {"shard0_digest", "shard1_digest"}) {
      ASSERT_TRUE(reports[id].contains(key)) << "replica " << id;
      EXPECT_EQ(reports[id].at(key), reports[0].at(key))
          << "replica " << id << " diverged on " << key;
    }
    EXPECT_GE(std::stoull(reports[id].at("executed_requests")), 300u) << "replica " << id;
    EXPECT_EQ(reports[id].at("decode_errors"), "0") << "replica " << id;
    EXPECT_EQ(reports[id].at("store_append_errors"), "0") << "replica " << id;
  }
}

// The durable-state acceptance bar under sharding: SIGKILL a follower, keep
// committing on both shards, restart it on its original data dir, and
// require ALL FOUR replicas digest-equal on the merged Execute stream.
TEST(SocketCluster, ShardedLeopardSurvivesKilledAndRestartedFollower) {
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, "leopard", ports, /*shards=*/2);

  const auto data_dir = [&](std::size_t id) { return dir + "/data" + std::to_string(id); };
  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) cluster.start(id, manifest, dir, data_dir(id));

  ASSERT_EQ(run_client(manifest, dir + "/client1.out", 100, 150), 0);

  // Replica 3 hosts shard-0 core 3 and shard-1 core 2 — killing it wounds
  // BOTH consensus instances at once; each tolerates it (f = 1).
  cluster.kill_hard(3);
  ASSERT_EQ(run_client(manifest, dir + "/client2.out", 101, 150, /*resubmit_ms=*/500), 0)
      << "sharded cluster must keep committing with one dead follower";

  cluster.start(3, manifest, dir, data_dir(3));
  ASSERT_EQ(run_client(manifest, dir + "/client3.out", 102, 100, /*resubmit_ms=*/500), 0)
      << "sharded cluster must keep committing after the follower rejoined";

  // Settle: state-transfer rounds for the restarted follower plus stall
  // ticks flushing the trailing rounds of both shards.
  ::usleep(2000 * 1000);
  std::vector<std::map<std::string, std::string>> reports;
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.stop(id), 0) << "replica " << id;
    reports.push_back(parse_report(cluster.outs[id]));
  }
  for (std::size_t id = 1; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged on the merged stream";
  }
  EXPECT_GE(std::stoull(reports[0].at("executed_requests")), 400u);
  EXPECT_EQ(reports[0].at("decode_errors"), "0");

  // The restarted follower exercised recovery AND state transfer against the
  // MERGED stream (global coordinates are the durable-commit identity).
  const auto& follower = reports[3];
  EXPECT_GT(std::stoull(follower.at("store_recovered_entries")), 0u)
      << "restart did not recover from the WAL";
  EXPECT_GT(std::stoull(follower.at("sync_entries")), 0u)
      << "restart did not use state transfer to fill the gap";
  EXPECT_EQ(follower.at("sync_live"), "1");
  EXPECT_EQ(follower.at("sync_verify_failures"), "0");
}

TEST(SocketCluster, LeopardSurvivesKilledAndRestartedFollower) {
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, "leopard", ports);

  const auto data_dir = [&](std::size_t id) { return dir + "/data" + std::to_string(id); };
  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) cluster.start(id, manifest, dir, data_dir(id));

  // Phase 1: healthy cluster commits.
  ASSERT_EQ(run_client(manifest, dir + "/client1.out", 100, 150), 0);

  // Phase 2: SIGKILL follower 3 outright (the leader of view 1 is replica 1).
  // µ(req) keeps routing a quarter of the load at the dead replica; the
  // client's re-submission rotation carries those requests to live ones.
  cluster.kill_hard(3);
  ASSERT_EQ(run_client(manifest, dir + "/client2.out", 101, 150, /*resubmit_ms=*/500), 0)
      << "cluster must keep committing with one dead follower";

  // Phase 3: restart the follower on its ORIGINAL data dir. It must recover
  // the phase-1 prefix from its WAL, pull the phase-2 suffix from peers via
  // state transfer, and go live — while the survivors keep serving.
  cluster.start(3, manifest, dir, data_dir(3));
  ASSERT_EQ(run_client(manifest, dir + "/client3.out", 102, 100, /*resubmit_ms=*/500), 0)
      << "cluster must keep committing after the follower rejoined";

  // Settle long enough for the follower's final catch-up round after the
  // load quiesces (probe/pull cycles run at network speed once offers land).
  ::usleep(2000 * 1000);
  std::vector<std::map<std::string, std::string>> reports;
  for (std::size_t id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.stop(id), 0) << "replica " << id;
    reports.push_back(parse_report(cluster.outs[id]));
  }
  // ALL FOUR replicas — including the killed-and-restarted one — agree on
  // the executed stream. This is the acceptance bar for durable state: the
  // follower's digest now folds phase 1 (recovered), phase 2 (transferred),
  // and phase 3 (lived) into the same chain as the survivors'.
  for (std::size_t id = 1; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged";
    EXPECT_EQ(reports[id].at("executed_blocks"), reports[0].at("executed_blocks"))
        << "replica " << id;
  }
  EXPECT_GE(std::stoull(reports[0].at("executed_requests")), 400u);
  EXPECT_EQ(reports[0].at("decode_errors"), "0");

  // The follower actually exercised both recovery paths: a non-empty WAL
  // prefix reloaded at boot, and entries pulled from peers.
  const auto& follower = reports[3];
  EXPECT_GT(std::stoull(follower.at("store_recovered_entries")), 0u)
      << "restart did not recover from the WAL";
  EXPECT_GT(std::stoull(follower.at("sync_entries")), 0u)
      << "restart did not use state transfer to fill the gap";
  EXPECT_EQ(follower.at("sync_live"), "1");
  EXPECT_EQ(follower.at("sync_verify_failures"), "0");
}
