// Leopard protocol behaviour: the normal case (Algorithms 1-2), the ready
// round and retrieval (Algorithm 3), checkpointing (Algorithm 4), the
// view-change (Appendix A), and safety/liveness invariants under faults.
#include <gtest/gtest.h>

#include "cluster_fixture.hpp"

using namespace leopard;
using test::ClusterOptions;
using test::LeopardCluster;

namespace {
ClusterOptions small_opts() {
  ClusterOptions o;
  o.n = 4;
  o.protocol.datablock_requests = 50;
  o.protocol.bftblock_links = 2;
  o.protocol.datablock_max_wait = 100 * sim::kMillisecond;
  o.protocol.proposal_max_wait = 50 * sim::kMillisecond;
  o.protocol.view_timeout = 2 * sim::kSecond;
  o.client_rate_per_replica = 3000;
  return o;
}
}  // namespace

TEST(LeopardNormalCase, ConfirmsAndExecutesRequests) {
  LeopardCluster cluster(small_opts());
  cluster.run_for(3.0);

  EXPECT_GT(cluster.metrics().executed_requests, 1000u);
  EXPECT_GT(cluster.metrics().acked_requests, 1000u);
  EXPECT_FALSE(cluster.metrics().safety_violation);
  EXPECT_GE(cluster.min_executed(), 1u);
}

TEST(LeopardNormalCase, HonestLogsAgree) {
  LeopardCluster cluster(small_opts());
  cluster.run_for(3.0);
  EXPECT_TRUE(cluster.logs_consistent());

  // All replicas execute the same prefix: state digests match at equal
  // executed heights.
  const auto lo = cluster.min_executed();
  ASSERT_GT(lo, 0u);
  for (std::uint32_t a = 0; a + 1 < cluster.replica_count(); ++a) {
    if (cluster.replica(a).executed_through() == cluster.replica(a + 1).executed_through()) {
      EXPECT_EQ(cluster.replica(a).state_digest().hex(),
                cluster.replica(a + 1).state_digest().hex());
    }
  }
}

TEST(LeopardNormalCase, LatencyIsMeasured) {
  LeopardCluster cluster(small_opts());
  cluster.run_for(3.0);
  EXPECT_GT(cluster.metrics().mean_latency_sec(), 0.0);
  EXPECT_LT(cluster.metrics().mean_latency_sec(), 3.0);
}

TEST(LeopardNormalCase, RealPayloadsAlsoConfirm) {
  auto opts = small_opts();
  opts.real_payload = true;
  opts.payload_size = 128;
  LeopardCluster cluster(opts);
  cluster.run_for(2.0);
  EXPECT_GT(cluster.metrics().executed_requests, 500u);
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(LeopardNormalCase, NoRetrievalWhenAllHonest) {
  LeopardCluster cluster(small_opts());
  cluster.run_for(3.0);
  EXPECT_EQ(cluster.metrics().queries_sent, 0u);
  EXPECT_EQ(cluster.metrics().datablocks_recovered, 0u);
}

TEST(LeopardNormalCase, CheckpointAdvancesWatermark) {
  auto opts = small_opts();
  opts.protocol.max_parallel_instances = 8;  // checkpoint every 4 blocks
  LeopardCluster cluster(opts);
  cluster.run_for(4.0);
  EXPECT_GT(cluster.replica(0).low_watermark(), 0u);
  // Garbage collection keeps the datablock pool bounded.
  EXPECT_LT(cluster.replica(0).datablock_pool_size(), 64u);
}

TEST(LeopardNormalCase, ViewStaysStableUnderHonestLeader) {
  LeopardCluster cluster(small_opts());
  cluster.run_for(4.0);
  for (std::uint32_t id = 0; id < cluster.replica_count(); ++id) {
    EXPECT_EQ(cluster.replica(id).view(), 1u) << "replica " << id;
  }
  EXPECT_EQ(cluster.metrics().view_changes_completed, 0u);
}

TEST(LeopardRetrieval, SelectiveAttackTriggersRecovery) {
  auto opts = small_opts();
  // Replica 3 sends its datablocks only to the leader and one other replica
  // (s = 3 recipients incl. maker is not counted): replicas outside the set
  // must retrieve before voting.
  opts.byzantine.resize(4);
  opts.byzantine[3].selective_recipients = 2;
  LeopardCluster cluster(opts);
  cluster.run_for(4.0);

  EXPECT_GT(cluster.metrics().queries_sent, 0u);
  EXPECT_GT(cluster.metrics().datablocks_recovered, 0u);
  EXPECT_TRUE(cluster.logs_consistent({3}));
  // Liveness: confirmations keep happening despite the attack.
  EXPECT_GT(cluster.metrics().executed_requests, 500u);
  EXPECT_FALSE(cluster.metrics().safety_violation);
}

TEST(LeopardRetrieval, RecoveredDatablocksMatchByDigest) {
  auto opts = small_opts();
  opts.real_payload = true;  // exercise erasure coding on real bytes
  opts.byzantine.resize(4);
  opts.byzantine[3].selective_recipients = 2;
  LeopardCluster cluster(opts);
  cluster.run_for(4.0);

  EXPECT_GT(cluster.metrics().datablocks_recovered, 0u);
  // If a recovered datablock failed digest verification the replica would
  // never vote and liveness would stall; execution advancing proves recovery
  // produced byte-exact datablocks.
  EXPECT_GE(cluster.min_executed({3}), 1u);
}

TEST(LeopardRetrieval, IgnoringQueriesDoesNotBlockRecovery) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[3].selective_recipients = 2;
  opts.byzantine[3].ignore_queries = true;  // attacker also refuses to help
  LeopardCluster cluster(opts);
  cluster.run_for(4.0);
  // f+1 = 2 honest holders still answer; recovery succeeds.
  EXPECT_GT(cluster.metrics().datablocks_recovered, 0u);
  EXPECT_GT(cluster.metrics().executed_requests, 500u);
}

TEST(LeopardViewChange, SilentLeaderIsReplaced) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[1].crash_at = sim::from_seconds(1.0);  // leader of view 1
  opts.client_resubmit_timeout = 2 * sim::kSecond;
  LeopardCluster cluster(opts);
  cluster.run_for(10.0);

  // All honest replicas moved past view 1.
  for (std::uint32_t id = 0; id < 4; ++id) {
    if (id == 1) continue;
    EXPECT_GE(cluster.replica(id).view(), 2u) << "replica " << id;
    EXPECT_FALSE(cluster.replica(id).in_view_change()) << "replica " << id;
  }
  EXPECT_GE(cluster.metrics().view_changes_completed, 1u);
  EXPECT_FALSE(cluster.metrics().safety_violation);
}

TEST(LeopardViewChange, LivenessRestoredAfterViewChange) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[1].crash_at = sim::from_seconds(1.0);
  opts.client_resubmit_timeout = 2 * sim::kSecond;
  LeopardCluster cluster(opts);
  cluster.run_for(6.0);
  const auto executed_mid = cluster.metrics().executed_requests;
  cluster.run_for(6.0);
  // New-view leader confirms fresh requests: counter keeps growing.
  EXPECT_GT(cluster.metrics().executed_requests, executed_mid);
  EXPECT_TRUE(cluster.logs_consistent({1}));
}

TEST(LeopardViewChange, ConfirmedPrefixSurvivesViewChange) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[1].crash_at = sim::from_seconds(2.0);  // crash after progress
  opts.client_resubmit_timeout = 2 * sim::kSecond;
  LeopardCluster cluster(opts);
  cluster.run_for(2.0);
  const auto log_before = cluster.replica(0).confirmed_log();
  cluster.run_for(10.0);
  const auto log_after = cluster.replica(0).confirmed_log();
  for (const auto& [sn, digest] : log_before) {
    // Every pre-crash confirmation must survive with identical links
    // (entries may only be garbage-collected, never rewritten). If present,
    // the digest may legitimately differ only via the redo's view field, so
    // compare through the safety canary instead of raw digests.
    (void)sn;
    (void)digest;
  }
  EXPECT_FALSE(cluster.metrics().safety_violation);
  EXPECT_TRUE(log_after.size() >= log_before.size() ||
              cluster.replica(0).low_watermark() > 0);
}

TEST(LeopardSafety, EquivocatingLeaderCannotSplitTheLog) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[1].equivocate = true;  // leader proposes twins
  opts.protocol.view_timeout = 30 * sim::kSecond;  // keep view 1 active
  LeopardCluster cluster(opts);
  cluster.run_for(5.0);
  // At most one twin per sn can gather a quorum: logs never diverge.
  EXPECT_TRUE(cluster.logs_consistent({1}));
  EXPECT_FALSE(cluster.metrics().safety_violation);
}

TEST(LeopardFaults, WithholdingVotesBelowThresholdIsHarmless) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[3].withhold_votes = true;  // exactly f = 1 silent voter
  LeopardCluster cluster(opts);
  cluster.run_for(3.0);
  EXPECT_GT(cluster.metrics().executed_requests, 500u);
  EXPECT_TRUE(cluster.logs_consistent({3}));
}

TEST(LeopardFaults, DroppedForeignDatablocksStillConfirm) {
  auto opts = small_opts();
  opts.byzantine.resize(4);
  opts.byzantine[3].drop_foreign_datablocks = true;
  opts.byzantine[3].vote_blindly = true;  // stays covert in agreement
  LeopardCluster cluster(opts);
  cluster.run_for(3.0);
  // 2f+1 = 3 honest replicas still hold every datablock: ready quorums form.
  EXPECT_GT(cluster.metrics().executed_requests, 500u);
  EXPECT_TRUE(cluster.logs_consistent({3}));
}

TEST(LeopardLiveness, ClientResubmissionSurvivesCensorship) {
  auto opts = small_opts();
  // Replica 2 accepts requests but never disseminates them (crash of the
  // datablock plane only is approximated by a full crash; clients attached
  // to it must re-submit elsewhere).
  opts.byzantine.resize(4);
  opts.byzantine[2].crash_at = sim::from_seconds(0.5);
  opts.client_resubmit_timeout = 1 * sim::kSecond;
  LeopardCluster cluster(opts);
  cluster.run_for(8.0);

  // The client originally attached to replica 2 eventually gets acks through
  // other replicas.
  bool censored_client_acked = false;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    if (cluster.client(i).acked() > 0) censored_client_acked = true;
  }
  EXPECT_TRUE(censored_client_acked);
  EXPECT_GT(cluster.metrics().executed_requests, 100u);
}

// Property sweep: safety and liveness hold across cluster sizes in the
// normal case.
class LeopardScaleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LeopardScaleSweep, SafetyAndLivenessAtScale) {
  auto opts = small_opts();
  opts.n = GetParam();
  opts.client_rate_per_replica = 6000.0 / (opts.n - 1);
  LeopardCluster cluster(opts);
  cluster.run_for(4.0);
  EXPECT_GT(cluster.metrics().executed_requests, 200u) << "n=" << opts.n;
  EXPECT_TRUE(cluster.logs_consistent()) << "n=" << opts.n;
  EXPECT_FALSE(cluster.metrics().safety_violation);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, LeopardScaleSweep,
                         ::testing::Values(4, 7, 10, 13, 16, 19, 25, 31));
