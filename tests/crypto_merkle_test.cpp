// Merkle tree construction and audit-proof verification, including the
// parameterized sweep over leaf counts that the retrieval path depends on.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "crypto/merkle.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"

namespace lc = leopard::crypto;
namespace lu = leopard::util;

namespace {
std::vector<lc::Digest> make_leaves(std::size_t count) {
  std::vector<lc::Digest> leaves;
  leaves.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    leaves.push_back(lc::Digest::of_string("leaf-" + std::to_string(i)));
  }
  return leaves;
}
}  // namespace

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  lc::MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  EXPECT_TRUE(tree.proof(0).empty());
  EXPECT_TRUE(lc::MerkleTree::verify(tree.root(), leaves[0], 0, 1, {}));
}

TEST(Merkle, RootIsDeterministic) {
  lc::MerkleTree a(make_leaves(9));
  lc::MerkleTree b(make_leaves(9));
  EXPECT_EQ(a.root(), b.root());
}

TEST(Merkle, RootChangesWhenAnyLeafChanges) {
  const auto base = lc::MerkleTree(make_leaves(8)).root();
  for (std::size_t i = 0; i < 8; ++i) {
    auto leaves = make_leaves(8);
    leaves[i] = lc::Digest::of_string("tampered");
    EXPECT_NE(lc::MerkleTree(leaves).root(), base) << "leaf " << i;
  }
}

TEST(Merkle, LeafOrderMatters) {
  auto leaves = make_leaves(4);
  const auto root = lc::MerkleTree(leaves).root();
  std::swap(leaves[1], leaves[2]);
  EXPECT_NE(lc::MerkleTree(leaves).root(), root);
}

TEST(Merkle, EmptyLeavesRejected) {
  EXPECT_THROW(lc::MerkleTree(std::vector<lc::Digest>{}), lu::ContractViolation);
}

TEST(Merkle, ProofIndexOutOfRangeThrows) {
  lc::MerkleTree tree(make_leaves(4));
  EXPECT_THROW(tree.proof(4), lu::ContractViolation);
}

TEST(Merkle, WrongIndexFailsVerification) {
  const auto leaves = make_leaves(8);
  lc::MerkleTree tree(leaves);
  const auto proof = tree.proof(3);
  EXPECT_TRUE(lc::MerkleTree::verify(tree.root(), leaves[3], 3, 8, proof));
  EXPECT_FALSE(lc::MerkleTree::verify(tree.root(), leaves[3], 2, 8, proof));
}

TEST(Merkle, TamperedProofFailsVerification) {
  const auto leaves = make_leaves(8);
  lc::MerkleTree tree(leaves);
  auto proof = tree.proof(5);
  ASSERT_FALSE(proof.empty());
  proof[0] = lc::Digest::of_string("evil");
  EXPECT_FALSE(lc::MerkleTree::verify(tree.root(), leaves[5], 5, 8, proof));
}

TEST(Merkle, TruncatedProofFailsVerification) {
  const auto leaves = make_leaves(16);
  lc::MerkleTree tree(leaves);
  auto proof = tree.proof(7);
  proof.pop_back();
  EXPECT_FALSE(lc::MerkleTree::verify(tree.root(), leaves[7], 7, 16, proof));
}

TEST(Merkle, OverlongProofFailsVerification) {
  const auto leaves = make_leaves(8);
  lc::MerkleTree tree(leaves);
  auto proof = tree.proof(0);
  proof.push_back(lc::Digest::of_string("extra"));
  EXPECT_FALSE(lc::MerkleTree::verify(tree.root(), leaves[0], 0, 8, proof));
}

TEST(Merkle, HashLeafIsDomainSeparated) {
  // A leaf hash of 32 concatenated bytes must not equal an interior hash of
  // the same bytes; domain tags prevent second-preimage splicing.
  const lu::Bytes data(64, 0xAB);
  const auto leaf = lc::MerkleTree::hash_leaf(data);
  EXPECT_NE(leaf, lc::Digest::of(data));
}

// Every leaf of every tree size in [1, 40] must verify; sizes cover perfect
// binary trees, odd promotions, and deep unbalanced shapes.
class MerkleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSweep, AllProofsVerify) {
  const auto count = GetParam();
  const auto leaves = make_leaves(count);
  lc::MerkleTree tree(leaves);
  for (std::size_t i = 0; i < count; ++i) {
    const auto proof = tree.proof(i);
    EXPECT_TRUE(lc::MerkleTree::verify(tree.root(), leaves[i], i, count, proof))
        << "leaf " << i << " of " << count;
    // A proof for leaf i must not verify any other leaf position.
    if (count > 1) {
      const std::size_t other = (i + 1) % count;
      EXPECT_FALSE(
          lc::MerkleTree::verify(tree.root(), leaves[other], other, count, proof) &&
          proof != tree.proof(other))
          << "proof for " << i << " cross-verified leaf " << other;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17,
                                           21, 31, 32, 33, 40));

TEST(Merkle, HashLeavesMatchesPerChunkHashLeaf) {
  // hash_leaves carves a contiguous shard arena in place; it must equal
  // hashing each chunk individually.
  const std::size_t leaf_size = 37;
  const std::size_t count = 9;
  lu::Bytes buf(leaf_size * count);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i * 31);

  const auto leaves = lc::MerkleTree::hash_leaves(buf, leaf_size);
  ASSERT_EQ(leaves.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::span<const std::uint8_t> chunk(buf.data() + i * leaf_size, leaf_size);
    EXPECT_EQ(leaves[i], lc::MerkleTree::hash_leaf(chunk)) << "chunk " << i;
  }
}

TEST(Merkle, HashLeavesRejectsMisalignedBuffer) {
  lu::Bytes buf(10);
  EXPECT_THROW(lc::MerkleTree::hash_leaves(buf, 0), lu::ContractViolation);
  EXPECT_THROW(lc::MerkleTree::hash_leaves(buf, 3), lu::ContractViolation);
}
