// Baseline protocols (HotStuff, PBFT): commit progress, chain consistency,
// and the leader-dissemination traffic pattern that motivates Leopard.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/hotstuff.hpp"
#include "baselines/pbft.hpp"
#include "core/client.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocol/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

using namespace leopard;

namespace {

template <typename Replica, typename Config>
struct BaselineCluster {
  sim::Simulator sim;
  sim::Network net;
  crypto::ThresholdScheme ts;
  core::ProtocolMetrics metrics;
  std::vector<protocol::SimReplica> handles;
  std::vector<Replica*> replicas;  // typed views into `handles`
  protocol::SimClient client;

  BaselineCluster(Config cfg, double rate)
      : net(sim, make_net()), ts(cfg.n, cfg.quorum(), 11) {
    for (std::uint32_t id = 0; id < cfg.n; ++id) {
      protocol::ProtocolSpec spec;
      spec.config = cfg;
      handles.push_back(protocol::make_sim_replica(net, metrics, spec, ts, id));
      replicas.push_back(&handles.back().template as<Replica>());
    }
    core::ClientConfig ccfg;
    ccfg.request_rate = rate;
    ccfg.payload_size = cfg.payload_size;
    ccfg.initial_backlog = 2 * cfg.batch_size;
    client = protocol::make_sim_client(net, metrics, ccfg, 0, cfg.n, cfg.n, 77);
  }

  static sim::NetworkConfig make_net() {
    sim::NetworkConfig cfg;
    cfg.propagation_delay = 100 * sim::kMicrosecond;
    return cfg;
  }

  void run_for(double seconds) {
    if (!started) {
      net.start_all();
      started = true;
    }
    sim.run_until(sim.now() + sim::from_seconds(seconds));
  }
  bool started = false;
};

}  // namespace

TEST(HotStuff, CommitsAndExecutes) {
  baselines::HotStuffConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  BaselineCluster<baselines::HotStuffReplica, baselines::HotStuffConfig> cluster(cfg, 20000);
  cluster.run_for(2.0);

  EXPECT_GT(cluster.metrics.executed_requests, 5000u);
  EXPECT_GT(cluster.metrics.acked_requests, 5000u);
  for (auto& r : cluster.replicas) EXPECT_GT(r->committed_height(), 3u);
}

TEST(HotStuff, ReplicasCommitSameChain) {
  baselines::HotStuffConfig cfg;
  cfg.n = 7;
  cfg.batch_size = 100;
  BaselineCluster<baselines::HotStuffReplica, baselines::HotStuffConfig> cluster(cfg, 20000);
  cluster.run_for(2.0);

  // Compare a recent committed height present at all replicas.
  proto::SeqNum h = cluster.replicas[0]->committed_height();
  for (auto& r : cluster.replicas) h = std::min(h, r->committed_height());
  ASSERT_GT(h, 1u);
  const auto want = cluster.replicas[0]->committed_digest(h);
  ASSERT_TRUE(want.has_value());
  for (auto& r : cluster.replicas) {
    const auto got = r->committed_digest(h);
    if (got.has_value()) EXPECT_EQ(*got, *want);
  }
}

TEST(HotStuff, ThroughputGrowsWithBatchSizeThenSaturates) {
  auto run = [](std::uint32_t batch) {
    baselines::HotStuffConfig cfg;
    cfg.n = 7;
    cfg.batch_size = batch;
    BaselineCluster<baselines::HotStuffReplica, baselines::HotStuffConfig> cluster(cfg,
                                                                                   300000);
    cluster.run_for(2.0);
    return cluster.metrics.executed_requests;
  };
  const auto t_small = run(10);
  const auto t_large = run(400);
  EXPECT_GT(t_large, 2 * t_small);  // Fig. 6's rising region
}

TEST(HotStuff, LeaderSendsEveryRequestToAllReplicas) {
  baselines::HotStuffConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  BaselineCluster<baselines::HotStuffReplica, baselines::HotStuffConfig> cluster(cfg, 20000);
  cluster.run_for(2.0);

  const auto leader_sent =
      cluster.net.traffic().bytes(0, sim::Direction::kSend, sim::Component::kDatablock);
  const auto executed = cluster.metrics.executed_requests;
  // Eq. (1): ≈ executed × payload × (n−1) bytes, plus headers/partial blocks.
  const double expected = static_cast<double>(executed) * cfg.payload_size * 3;
  EXPECT_GT(static_cast<double>(leader_sent), 0.9 * expected);
}

TEST(Pbft, CommitsAndExecutes) {
  baselines::PbftConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  BaselineCluster<baselines::PbftReplica, baselines::PbftConfig> cluster(cfg, 20000);
  cluster.run_for(2.0);

  EXPECT_GT(cluster.metrics.executed_requests, 5000u);
  for (auto& r : cluster.replicas) EXPECT_GT(r->executed_through(), 3u);
}

TEST(Pbft, VoteTrafficIsAllToAll) {
  baselines::PbftConfig cfg;
  cfg.n = 7;
  cfg.batch_size = 200;
  BaselineCluster<baselines::PbftReplica, baselines::PbftConfig> cluster(cfg, 20000);
  cluster.run_for(2.0);

  // Every replica multicasts prepare+commit votes: each non-leader's vote
  // send traffic is ≈ 2(n−1) votes per block — far more than one share.
  const auto votes_sent =
      cluster.net.traffic().messages(2, sim::Direction::kSend, sim::Component::kVote);
  const auto blocks = cluster.replicas[2]->executed_through();
  ASSERT_GT(blocks, 0u);
  EXPECT_GE(votes_sent, blocks * 2 * (cfg.n - 1) / 2);  // ≥ half (windowing slack)
}

TEST(Pbft, ParallelInstancesRespectWindow) {
  baselines::PbftConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 50;
  cfg.max_parallel_instances = 3;
  BaselineCluster<baselines::PbftReplica, baselines::PbftConfig> cluster(cfg, 50000);
  cluster.run_for(1.0);
  EXPECT_GT(cluster.metrics.executed_requests, 1000u);
}
