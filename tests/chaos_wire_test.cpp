// Adversarial scenario engine, wire side: forks real leopard_node clusters on
// 127.0.0.1 with one replica running a --byzantine interposer mode, and real
// chaos_proxy processes interposed on selected links with deterministic
// partition/heal schedules. Safety acceptance is the deployment analogue of
// the sim oracles: identical exec_digest folds across (honest) replicas plus
// client liveness; the per-peer shed/reconnect counters in the SIGTERM report
// prove the attacked links actually degraded.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifndef LEOPARD_NODE_BIN
#error "CMake must define LEOPARD_NODE_BIN (path to the leopard_node binary)"
#endif
#ifndef CHAOS_PROXY_BIN
#error "CMake must define CHAOS_PROXY_BIN (path to the chaos_proxy binary)"
#endif

namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::uint16_t> pick_free_ports(std::size_t count) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

std::string temp_dir() {
  char tmpl[] = "/tmp/leopard_chaos_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

struct ManifestOpts {
  std::uint32_t view_timeout_ms = 60000;  // generous: no spurious view changes under ASan
  std::uint32_t max_parallel_instances = 40;
  std::vector<std::string> extra;  // proxy overrides, peer_buffer_bytes, ...
};

/// Per-node manifests differ only in the extra lines (proxy dial overrides,
/// buffer caps), so each variant gets its own file name in the shared dir.
std::string write_manifest(const std::string& dir, const std::string& name,
                           const std::vector<std::uint16_t>& ports, const ManifestOpts& opts) {
  const auto path = dir + "/" + name;
  std::ofstream out(path);
  out << "protocol leopard\n"
      << "n " << ports.size() << "\n"
      << "seed 7\n"
      << "payload_size 64\n"
      << "datablock_requests 50\n"
      << "bftblock_links 4\n"
      << "max_parallel_instances " << opts.max_parallel_instances << "\n"
      << "datablock_max_wait_ms 20\n"
      << "proposal_max_wait_ms 10\n"
      << "retrieval_timeout_ms 20\n"
      << "view_timeout_ms " << opts.view_timeout_ms << "\n"
      << "batch_size 50\n";
  for (std::size_t id = 0; id < ports.size(); ++id) {
    out << "node " << id << " 127.0.0.1:" << ports[id] << "\n";
  }
  for (const auto& line : opts.extra) out << line << "\n";
  return path;
}

pid_t spawn_process(const char* bin, const std::string& out_path,
                    std::vector<std::string> args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ::dup2(fd, 1);
  ::dup2(fd, 2);
  ::close(fd);
  std::vector<std::string> full = {bin};
  for (auto& a : args) full.push_back(std::move(a));
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (auto& a : full) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(bin, argv.data());
  std::perror("execv");
  ::_exit(127);
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

std::map<std::string, std::string> parse_report(const std::string& path) {
  std::ifstream in(path);
  std::map<std::string, std::string> kv;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq != std::string::npos) kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

/// True if an "id:count,id:count" per-peer counter line has an entry for
/// `peer` ("-" means no nonzero entries).
bool has_peer_entry(const std::string& line, std::uint32_t peer) {
  std::stringstream ss(line);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon != std::string::npos && item.substr(0, colon) == std::to_string(peer)) return true;
  }
  return false;
}

struct ReplicaSet {
  std::vector<pid_t> pids;
  std::vector<std::string> outs;

  ~ReplicaSet() {
    for (const auto pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const auto pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  void start(std::size_t id, const std::string& manifest, const std::string& dir,
             const std::string& data_dir = "", std::vector<std::string> extra = {}) {
    outs.resize(std::max(outs.size(), id + 1));
    pids.resize(std::max(pids.size(), id + 1), -1);
    outs[id] = dir + "/replica" + std::to_string(id) + "_" + std::to_string(::getpid()) +
               "_" + std::to_string(next_out_++) + ".out";
    std::vector<std::string> args = {"--manifest", manifest, "--id", std::to_string(id)};
    if (!data_dir.empty()) {
      args.push_back("--data-dir");
      args.push_back(data_dir);
    }
    for (auto& a : extra) args.push_back(std::move(a));
    pids[id] = spawn_process(LEOPARD_NODE_BIN, outs[id], std::move(args));
  }

  int stop(std::size_t id) {
    ::kill(pids[id], SIGTERM);
    const int rc = wait_exit(pids[id]);
    pids[id] = -1;
    return rc;
  }

  void kill_hard(std::size_t id) {
    ::kill(pids[id], SIGKILL);
    ::waitpid(pids[id], nullptr, 0);
    pids[id] = -1;
  }

 private:
  int next_out_ = 0;
};

/// Kills the proxy on scope exit so a failed ASSERT cannot leak it.
struct ProxyHandle {
  pid_t pid = -1;
  std::string out;

  ~ProxyHandle() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  std::map<std::string, std::string> stop() {
    ::kill(pid, SIGTERM);
    EXPECT_EQ(wait_exit(pid), 0) << "chaos_proxy did not exit cleanly";
    pid = -1;
    return parse_report(out);
  }
};

int run_client(const std::string& manifest, const std::string& out_path, std::uint32_t id,
               std::uint32_t requests, std::uint32_t resubmit_ms = 1000) {
  const pid_t pid = spawn_process(
      LEOPARD_NODE_BIN, out_path,
      {"--manifest", manifest, "--client", "--id", std::to_string(id), "--requests",
       std::to_string(requests), "--window", "32", "--timeout", "90", "--resubmit-ms",
       std::to_string(resubmit_ms)});
  return wait_exit(pid);
}

void sleep_until_ms(Clock::time_point t0, std::uint64_t ms) {
  std::this_thread::sleep_until(t0 + std::chrono::milliseconds(ms));
}

std::vector<std::map<std::string, std::string>> stop_all(ReplicaSet& cluster, std::size_t n) {
  std::vector<std::map<std::string, std::string>> reports;
  for (std::size_t id = 0; id < n; ++id) {
    EXPECT_EQ(cluster.stop(id), 0) << "replica " << id << " did not exit cleanly";
    reports.push_back(parse_report(cluster.outs[id]));
  }
  return reports;
}

}  // namespace

// --- byzantine interposer modes ----------------------------------------------

TEST(ChaosWire, EquivocatingLeaderIsContained) {
  // The view-1 leader (replica 1) splits every proposal into two conflicting
  // twins. Neither twin can reach quorum, so the honest replicas must
  // view-change away and keep committing — with no fork between them.
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  ManifestOpts mopts;
  mopts.view_timeout_ms = 1500;  // recover from the poisoned view quickly
  const auto manifest = write_manifest(dir, "cluster.conf", ports, mopts);

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    std::vector<std::string> extra;
    if (id == 1) extra = {"--byzantine", "equivocate"};
    cluster.start(id, manifest, dir, "", std::move(extra));
  }

  ASSERT_EQ(run_client(manifest, dir + "/client.out", 100, 300, 500), 0)
      << "cluster lost liveness under an equivocating leader";
  EXPECT_EQ(parse_report(dir + "/client.out").at("acked"), "300");
  ::usleep(500 * 1000);

  const auto reports = stop_all(cluster, 4);
  const std::vector<std::size_t> honest = {0, 2, 3};
  for (const auto id : honest) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "honest replicas forked under equivocation (replica " << id << ")";
    EXPECT_EQ(reports[id].at("state_digest"), reports[0].at("state_digest")) << id;
    EXPECT_GE(std::stoul(reports[id].at("view")), 2u)
        << "replica " << id << " never left the equivocator's view";
  }
  EXPECT_EQ(reports[1].at("byzantine"), "equivocate");
  EXPECT_GT(std::stoull(reports[1].at("byz_equivocations")), 0u)
      << "the byzantine leader never actually equivocated";
}

TEST(ChaosWire, SelectiveSilenceTowardVictimStaysSafeAndLive) {
  // Replica 3 suppresses every frame toward the f victim replicas (replica 0
  // here). The victim must still execute the full stream — datablock
  // retrieval and the remaining 2f honest links carry it — and no honest
  // pair may diverge.
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, "cluster.conf", ports, {});

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    std::vector<std::string> extra;
    if (id == 3) extra = {"--byzantine", "silence"};
    cluster.start(id, manifest, dir, "", std::move(extra));
  }

  ASSERT_EQ(run_client(manifest, dir + "/client.out", 100, 300, 500), 0)
      << "cluster lost liveness under selective silence";
  ::usleep(500 * 1000);

  const auto reports = stop_all(cluster, 4);
  for (const std::size_t id : {0u, 1u, 2u}) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest")) << id;
    EXPECT_EQ(reports[id].at("state_digest"), reports[0].at("state_digest")) << id;
  }
  EXPECT_GE(std::stoull(reports[0].at("executed_requests")), 300u)
      << "the silenced victim fell behind the executed stream";
  EXPECT_GT(std::stoull(reports[3].at("byz_suppressed")), 0u)
      << "the byzantine replica never actually suppressed a frame";
}

TEST(ChaosWire, GarbageSharesCannotPoisonStateTransfer) {
  // Replica 3 corrupts every chunk it serves (retrieval and state-transfer
  // shares). A crashed-and-restarted replica 0 must still catch up: the
  // subset-robust pull decode discards the garbled shard and completes from
  // the honest servers.
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(4);
  const auto manifest = write_manifest(dir, "cluster.conf", ports, {});
  const auto data_dir = [&](std::size_t id) { return dir + "/data" + std::to_string(id); };

  ReplicaSet cluster;
  for (std::size_t id = 0; id < 4; ++id) {
    std::vector<std::string> extra;
    if (id == 3) extra = {"--byzantine", "garbage-shares"};
    cluster.start(id, manifest, dir, data_dir(id), std::move(extra));
  }

  ASSERT_EQ(run_client(manifest, dir + "/client1.out", 100, 150), 0);
  cluster.kill_hard(0);
  ASSERT_EQ(run_client(manifest, dir + "/client2.out", 101, 150, 500), 0);
  cluster.start(0, manifest, dir, data_dir(0));
  ASSERT_EQ(run_client(manifest, dir + "/client3.out", 102, 100, 500), 0);
  ::usleep(3000 * 1000);  // final catch-up rounds after the load quiesces

  const auto reports = stop_all(cluster, 4);
  for (std::size_t id = 1; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged";
  }
  const auto& restarted = reports[0];
  EXPECT_GT(std::stoull(restarted.at("store_recovered_entries")), 0u)
      << "restart did not recover from the WAL";
  EXPECT_GT(std::stoull(restarted.at("sync_entries")), 0u)
      << "restart did not use state transfer to fill the gap";
  EXPECT_EQ(restarted.at("sync_live"), "1");
  EXPECT_GT(std::stoull(reports[3].at("byz_corrupted")), 0u)
      << "the byzantine replica never actually served a corrupted chunk";
}

TEST(ChaosWire, LaggardLeaderDegradesMeasuredCommitLatencyWithoutViewChange) {
  // FnF-style laggard: the leader holds every outbound frame for `kLagMs`.
  // No view change should fire (the generous timeout absorbs the lag) and all
  // replicas fold the same stream — but the attack must also be VISIBLE in the
  // measured commit-latency histogram: run an identical honest cluster first
  // and demand the attacked percentiles degrade by a bounded factor. The
  // client's p50/p99 come from the same HDR histogram /metrics exposes.
  constexpr std::uint64_t kLagMs = 150;
  const auto dir = temp_dir();

  const auto run_cluster = [&](const std::string& tag,
                               bool laggard) -> std::map<std::string, std::string> {
    const auto ports = pick_free_ports(4);
    const auto manifest = write_manifest(dir, "cluster_" + tag + ".conf", ports, {});
    ReplicaSet cluster;
    for (std::size_t id = 0; id < 4; ++id) {
      std::vector<std::string> extra;
      if (laggard && id == 1) {
        extra = {"--byzantine", "laggard", "--byzantine-lag-ms", std::to_string(kLagMs)};
      }
      cluster.start(id, manifest, dir, "", std::move(extra));
    }
    const auto client_out = dir + "/client_" + tag + ".out";
    EXPECT_EQ(run_client(manifest, client_out, 100, 300, 1000), 0)
        << "cluster lost liveness (" << tag << ")";
    if (laggard) ::usleep(800 * 1000);  // let the last held frames flush

    const auto reports = stop_all(cluster, 4);
    for (std::size_t id = 1; id < 4; ++id) {
      EXPECT_TRUE(reports[id].contains("exec_digest")) << tag << " replica " << id;
      EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
          << tag << " replica " << id;
    }
    for (const std::size_t id : {0u, 2u, 3u}) {
      EXPECT_EQ(reports[id].at("view"), "1")
          << "laggard=" << laggard << " should not force a view change (replica " << id
          << ")";
    }
    if (laggard) {
      EXPECT_GT(std::stoull(reports[1].at("byz_delayed")), 0u)
          << "the laggard never actually delayed a frame";
    }
    return parse_report(client_out);
  };

  const auto baseline = run_cluster("baseline", false);
  const auto attacked = run_cluster("laggard", true);

  ASSERT_TRUE(baseline.contains("p50_latency_ms") && baseline.contains("p99_latency_ms"));
  ASSERT_TRUE(attacked.contains("p50_latency_ms") && attacked.contains("p99_latency_ms"));
  const double base_p50 = std::stod(baseline.at("p50_latency_ms"));
  const double base_p99 = std::stod(baseline.at("p99_latency_ms"));
  const double atk_p50 = std::stod(attacked.at("p50_latency_ms"));
  const double atk_p99 = std::stod(attacked.at("p99_latency_ms"));

  // Lower bound: the leader's held frames sit on the commit path, so the
  // median must absorb most of one lag and clearly degrade from baseline.
  EXPECT_GE(atk_p50, static_cast<double>(kLagMs) * 0.6)
      << "laggard p50 " << atk_p50 << "ms does not reflect a " << kLagMs << "ms hold";
  EXPECT_GE(atk_p50, 2.0 * base_p50)
      << "laggard p50 " << atk_p50 << "ms vs baseline " << base_p50
      << "ms: degradation factor under 2x";
  // Upper bound: a fixed lag must not compound — the tail stays within a few
  // held rounds of the honest tail (generous so CI jitter cannot trip it).
  EXPECT_LE(atk_p99, base_p99 + 25.0 * static_cast<double>(kLagMs))
      << "laggard p99 " << atk_p99 << "ms blew past baseline " << base_p99
      << "ms + 25 lags";
}

// --- chaos proxy partition schedules -----------------------------------------

namespace {

struct PartitionWindow {
  std::uint64_t start_ms = 0;
  std::uint64_t duration_ms = 0;
};

/// Runs a 4-replica cluster where replica 3 reaches peers 0..2 only through a
/// chaos_proxy, severs those links on `windows`, and drives client load
/// before, during, and after. Asserts digest convergence (including the
/// partitioned replica), client progress in every phase, and that the
/// attacked links actually flapped. `expect_gap_pull` additionally asserts
/// the long-outage machinery engaged: replica 3 filled its checkpoint gap
/// via state transfer, and the small-buffered replica 2 visibly shed frames
/// toward it. (Short flapping windows are meant to heal through the live
/// path, where neither necessarily triggers.)
void run_partition_scenario(const std::vector<PartitionWindow>& windows,
                            std::uint64_t resume_ms, std::uint64_t during_requests,
                            bool expect_gap_pull) {
  const auto dir = temp_dir();
  const auto ports = pick_free_ports(7);  // 4 node ports + 3 proxy listen ports
  const std::vector<std::uint16_t> node_ports(ports.begin(), ports.begin() + 4);

  // A low parallel-instance cap makes checkpoints land every 4 sequence
  // numbers, so the post-heal phase reliably crosses a checkpoint boundary
  // and replica 3 exercises adopt-checkpoint + gap pull.
  ManifestOpts base;
  base.max_parallel_instances = 8;
  const auto manifest = write_manifest(dir, "cluster.conf", node_ports, base);

  // Replica 2 runs a deliberately small per-peer buffer so its frames toward
  // the unreachable replica 3 visibly shed (the others keep the default and
  // carry the state-transfer shards).
  ManifestOpts small = base;
  small.extra = {"peer_buffer_bytes 6144"};
  const auto manifest_small = write_manifest(dir, "cluster_small.conf", node_ports, small);

  // Replica 3 dials every peer through the proxy.
  ManifestOpts proxied = base;
  for (std::size_t peer = 0; peer < 3; ++peer) {
    proxied.extra.push_back("proxy " + std::to_string(peer) + " 127.0.0.1:" +
                            std::to_string(ports[4 + peer]));
  }
  const auto manifest_proxy = write_manifest(dir, "cluster_proxy.conf", node_ports, proxied);

  // Proxy: one route per link, every route partitioned on the same schedule.
  std::vector<std::string> proxy_args;
  for (std::size_t peer = 0; peer < 3; ++peer) {
    proxy_args.push_back("--route");
    proxy_args.push_back(std::to_string(ports[4 + peer]) + ":127.0.0.1:" +
                         std::to_string(node_ports[peer]));
  }
  for (const auto& w : windows) {
    for (std::size_t peer = 0; peer < 3; ++peer) {
      proxy_args.push_back("--partition");
      proxy_args.push_back(std::to_string(ports[4 + peer]) + "@" +
                           std::to_string(w.start_ms) + "+" + std::to_string(w.duration_ms));
    }
  }
  ProxyHandle proxy;
  proxy.out = dir + "/proxy.out";
  const auto t0 = Clock::now();  // partition schedule is relative to proxy start
  proxy.pid = spawn_process(CHAOS_PROXY_BIN, proxy.out, proxy_args);

  const auto data_dir = [&](std::size_t id) { return dir + "/data" + std::to_string(id); };
  ReplicaSet cluster;
  cluster.start(0, manifest, dir, data_dir(0));
  cluster.start(1, manifest, dir, data_dir(1));
  cluster.start(2, manifest_small, dir, data_dir(2));
  cluster.start(3, manifest_proxy, dir, data_dir(3));

  // Phase 1: healthy traffic before the first window.
  ASSERT_EQ(run_client(manifest, dir + "/client1.out", 100, 150, 500), 0)
      << "no progress before the partition";

  // Phase 2: heavy traffic while replica 3 is cut off. The client still dials
  // replica 3 directly; its requests there stall and rotate to live replicas.
  sleep_until_ms(t0, windows.front().start_ms + 500);
  ASSERT_EQ(run_client(manifest, dir + "/client2.out", 101, during_requests, 500), 0)
      << "quorum of connected replicas lost progress during the partition";

  // Phase 3: post-heal traffic that crosses a checkpoint boundary, forcing
  // the partitioned replica through adopt-checkpoint and the gap pull.
  sleep_until_ms(t0, resume_ms);
  ASSERT_EQ(run_client(manifest, dir + "/client3.out", 102, 200, 500), 0)
      << "no progress after the partition healed";
  ::usleep(3000 * 1000);  // catch-up rounds for replica 3

  const auto reports = stop_all(cluster, 4);
  const auto proxy_report = proxy.stop();

  for (std::size_t id = 1; id < 4; ++id) {
    ASSERT_TRUE(reports[id].contains("exec_digest")) << "replica " << id;
    EXPECT_EQ(reports[id].at("exec_digest"), reports[0].at("exec_digest"))
        << "replica " << id << " diverged after partition heal";
  }
  EXPECT_EQ(reports[3].at("sync_live"), "1");
  // The partitioned replica's broken proxy dials were retried...
  EXPECT_TRUE(has_peer_entry(reports[3].at("peer_reconnects"), 0) ||
              has_peer_entry(reports[3].at("peer_reconnects"), 1) ||
              has_peer_entry(reports[3].at("peer_reconnects"), 2))
      << "replica 3 reported no reconnect attempts: " << reports[3].at("peer_reconnects");
  if (expect_gap_pull) {
    // ...it rejoined through adopt-checkpoint + state transfer...
    EXPECT_GT(std::stoull(reports[3].at("sync_entries")), 0u)
        << "replica 3 never pulled the partition gap";
    // ...and the small-buffered honest replica shed frames toward it.
    EXPECT_TRUE(has_peer_entry(reports[2].at("peer_shed"), 3))
        << "replica 2 reported no shed frames toward the partitioned peer: "
        << reports[2].at("peer_shed");
  }

  const auto expected_partitions = 3 * windows.size();
  EXPECT_EQ(std::stoull(proxy_report.at("partitions_started")), expected_partitions);
  EXPECT_EQ(std::stoull(proxy_report.at("partitions_healed")), expected_partitions);
  EXPECT_GT(std::stoull(proxy_report.at("links_opened")), 0u);
  EXPECT_GT(std::stoull(proxy_report.at("chunks_forwarded")), 0u);
}

}  // namespace

TEST(ChaosWire, ProxySingleLongPartitionHealsToAgreement) {
  run_partition_scenario({{2500, 6000}}, /*resume_ms=*/9200, /*during_requests=*/600,
                         /*expect_gap_pull=*/true);
}

TEST(ChaosWire, ProxyFlappingPartitionsHealToAgreement) {
  run_partition_scenario({{2500, 1500}, {5500, 1500}}, /*resume_ms=*/7500,
                         /*during_requests=*/400, /*expect_gap_pull=*/false);
}
