// LeopardClient behaviour: open-loop pacing, burst batching, backlog
// injection, ack bookkeeping, latency accounting, and re-submission rotation.
#include <gtest/gtest.h>

#include <memory>

#include "core/client.hpp"
#include "proto/messages.hpp"
#include "protocol/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

using namespace leopard;

namespace {

/// Replica stand-in that records received requests and can ack on command.
struct RecordingReplica final : sim::Node {
  sim::Network* net = nullptr;
  sim::NodeId self = 0;
  std::vector<proto::Request> received;
  bool auto_ack = false;

  void on_message(sim::NodeId from, const sim::PayloadPtr& msg) override {
    const auto batch = std::dynamic_pointer_cast<const proto::ClientRequestMsg>(msg);
    if (!batch) return;
    for (const auto& r : batch->requests) received.push_back(r);
    if (auto_ack) {
      auto ack = std::make_shared<proto::AckMsg>();
      ack->client_id = batch->requests.front().client_id;
      for (const auto& r : batch->requests) ack->seqs.push_back(r.seq);
      net->send(self, from, std::move(ack));
    }
  }
};

struct ClientHarness {
  sim::Simulator sim;
  sim::Network net;
  core::ProtocolMetrics metrics;
  std::vector<std::unique_ptr<RecordingReplica>> replicas;
  protocol::SimClient handle;
  core::LeopardClient* client = nullptr;

  explicit ClientHarness(core::ClientConfig cfg, std::uint32_t replica_count = 4)
      : net(sim, sim::NetworkConfig{}) {
    for (std::uint32_t i = 0; i < replica_count; ++i) {
      auto r = std::make_unique<RecordingReplica>();
      r->net = &net;
      r->self = net.add_node(r.get());
      replicas.push_back(std::move(r));
    }
    handle = protocol::make_sim_client(net, metrics, cfg, /*target=*/0, replica_count,
                                       /*avoid=*/1, /*seed=*/5);
    client = handle.core.get();
  }

  void run(double seconds) {
    net.start_all();
    sim.run_until(sim::from_seconds(seconds));
  }
};

}  // namespace

TEST(Client, SubmitsAtApproximatelyConfiguredRate) {
  core::ClientConfig cfg;
  cfg.request_rate = 5000;
  ClientHarness h(cfg);
  h.run(2.0);
  const auto received = h.replicas[0]->received.size();
  EXPECT_GT(received, 8000u);
  EXPECT_LT(received, 12000u);
}

TEST(Client, BacklogArrivesUpFront) {
  core::ClientConfig cfg;
  cfg.request_rate = 0;  // backlog only
  cfg.initial_backlog = 777;
  ClientHarness h(cfg);
  h.run(1.0);
  EXPECT_EQ(h.replicas[0]->received.size(), 777u);
}

TEST(Client, SequencesAreUniqueAndDense) {
  core::ClientConfig cfg;
  cfg.request_rate = 3000;
  cfg.initial_backlog = 100;
  ClientHarness h(cfg);
  h.run(1.0);
  std::set<std::uint64_t> seqs;
  for (const auto& r : h.replicas[0]->received) seqs.insert(r.seq);
  EXPECT_EQ(seqs.size(), h.replicas[0]->received.size());  // no duplicates
  EXPECT_EQ(*seqs.begin(), 0u);
  EXPECT_EQ(*seqs.rbegin(), seqs.size() - 1);  // dense range
}

TEST(Client, AcksProduceLatencySamples) {
  core::ClientConfig cfg;
  cfg.request_rate = 2000;
  ClientHarness h(cfg);
  h.replicas[0]->auto_ack = true;
  h.run(1.0);
  EXPECT_GT(h.metrics.acked_requests, 1000u);
  EXPECT_GT(h.metrics.mean_latency_sec(), 0.0);
  EXPECT_LT(h.metrics.mean_latency_sec(), 0.1);  // prompt acks, low latency
  EXPECT_EQ(h.client->acked(), h.metrics.acked_requests);
}

TEST(Client, DuplicateAcksCountOnce) {
  core::ClientConfig cfg;
  cfg.initial_backlog = 10;
  ClientHarness h(cfg);
  h.replicas[0]->auto_ack = true;
  h.run(0.5);
  const auto first = h.metrics.acked_requests;
  // Re-deliver the same acks manually.
  auto ack = std::make_shared<proto::AckMsg>();
  for (std::uint64_t s = 0; s < 10; ++s) ack->seqs.push_back(s);
  h.net.send(0, h.replicas.size(), std::move(ack));  // client node id = replica_count
  h.sim.run_until(h.sim.now() + sim::kSecond);
  EXPECT_EQ(h.metrics.acked_requests, first);
}

TEST(Client, ResubmitsToNextReplicaOnTimeout) {
  core::ClientConfig cfg;
  cfg.request_rate = 500;
  cfg.resubmit_timeout = 500 * sim::kMillisecond;
  ClientHarness h(cfg);  // replica 0 never acks
  h.run(3.0);
  // Rotation skips replica 1 (the configured leader): traffic lands on 2.
  EXPECT_GT(h.replicas[2]->received.size(), 0u);
  for (const auto& r : h.replicas[1]->received) {
    (void)r;
    FAIL() << "avoided replica must not receive re-submissions";
  }
}

TEST(Client, StopsAtConfiguredTime) {
  core::ClientConfig cfg;
  cfg.request_rate = 4000;
  cfg.stop_at = 500 * sim::kMillisecond;
  ClientHarness h(cfg);
  h.run(2.0);
  const auto received = h.replicas[0]->received.size();
  EXPECT_GT(received, 1000u);
  EXPECT_LT(received, 3000u);  // ~2000 expected in half a second
}

TEST(Client, ClosedLoopKeepsWindowFullUntilTotal) {
  core::ClientConfig cfg;
  cfg.closed_loop_window = 16;
  cfg.total_requests = 200;
  ClientHarness h(cfg);
  h.replicas[0]->auto_ack = true;
  h.run(2.0);
  EXPECT_TRUE(h.client->done());
  EXPECT_EQ(h.client->submitted(), 200u);
  EXPECT_EQ(h.client->acked(), 200u);
  EXPECT_EQ(h.client->outstanding(), 0u);
  // Closed loop never over-submits: the replica saw exactly the total.
  EXPECT_EQ(h.replicas[0]->received.size(), 200u);
}

TEST(Client, ClosedLoopWindowBoundsInflight) {
  core::ClientConfig cfg;
  cfg.closed_loop_window = 8;
  cfg.total_requests = 100;
  ClientHarness h(cfg);  // nobody acks: the window fills and stays put
  h.run(1.0);
  EXPECT_EQ(h.client->submitted(), 8u);
  EXPECT_EQ(h.client->outstanding(), 8u);
  EXPECT_FALSE(h.client->done());
}

TEST(Client, BurstBatchingPreservesTotalRate) {
  core::ClientConfig cfg;
  cfg.request_rate = 60000;  // auto-burst kicks in above 25k/s
  ClientHarness h(cfg);
  h.run(1.0);
  const auto received = h.replicas[0]->received.size();
  EXPECT_GT(received, 45000u);
  EXPECT_LT(received, 75000u);
}
