// Wire messages: encode/decode round trips, digest stability, and the exact
// wire sizes the evaluation's bandwidth accounting depends on (β = 32,
// κ = 48, payload as configured).
#include <gtest/gtest.h>

#include "proto/messages.hpp"
#include "util/rng.hpp"

namespace lp = leopard::proto;
namespace lc = leopard::crypto;
namespace lu = leopard::util;

namespace {
lp::Request make_request(std::uint64_t client, std::uint64_t seq, std::uint32_t size,
                         bool real) {
  lp::Request r;
  r.client_id = client;
  r.seq = seq;
  r.payload_size = size;
  if (real) {
    lu::Rng rng(client * 1000 + seq);
    r.payload.resize(size);
    rng.fill(r.payload.data(), r.payload.size());
  }
  return r;
}
}  // namespace

TEST(Request, WireSizeIsHeaderPlusPayload) {
  const auto r = make_request(1, 2, 128, false);
  EXPECT_EQ(r.wire_size(), 8u + 8u + 4u + 128u);
}

TEST(Request, RoundTripsWithRealPayload) {
  const auto r = make_request(7, 42, 64, true);
  lu::ByteWriter w;
  r.encode(w);
  lu::ByteReader reader(w.bytes());
  const auto back = lp::Request::decode(reader);
  EXPECT_EQ(back.client_id, 7u);
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.payload_size, 64u);
  EXPECT_EQ(back.payload, r.payload);
  EXPECT_EQ(back.digest(), r.digest());
}

TEST(Request, RoundTripsSynthetic) {
  const auto r = make_request(7, 42, 128, false);
  lu::ByteWriter w;
  r.encode(w);
  lu::ByteReader reader(w.bytes());
  const auto back = lp::Request::decode(reader);
  EXPECT_TRUE(back.payload.empty());
  EXPECT_EQ(back.payload_size, 128u);
  EXPECT_EQ(back.digest(), r.digest());
}

TEST(Request, DistinctIdentitiesDistinctDigests) {
  EXPECT_NE(make_request(1, 1, 128, false).digest(), make_request(1, 2, 128, false).digest());
  EXPECT_NE(make_request(1, 1, 128, false).digest(), make_request(2, 1, 128, false).digest());
}

TEST(Datablock, WireSizeSumsRequests) {
  lp::Datablock db;
  db.maker = 3;
  db.counter = 9;
  for (int i = 0; i < 5; ++i) db.requests.push_back(make_request(1, i, 128, false));
  EXPECT_EQ(db.wire_size(), 4u + 8u + 4u + 5u * (20u + 128u));
}

TEST(Datablock, RoundTripPreservesDigest) {
  lp::Datablock db;
  db.maker = 2;
  db.counter = 5;
  for (int i = 0; i < 8; ++i) db.requests.push_back(make_request(4, i, 32, true));

  lu::ByteWriter w;
  db.encode(w);
  lu::ByteReader r(w.bytes());
  const auto back = lp::Datablock::decode(r);
  EXPECT_EQ(back.digest(), db.digest());
  EXPECT_EQ(back.maker, 2u);
  EXPECT_EQ(back.counter, 5u);
  ASSERT_EQ(back.requests.size(), 8u);
}

TEST(Datablock, DigestDependsOnMakerCounterAndContent) {
  lp::Datablock a;
  a.maker = 1;
  a.counter = 1;
  a.requests.push_back(make_request(1, 1, 16, false));
  auto b = a;
  b.maker = 2;
  EXPECT_NE(a.digest(), b.digest());
  auto c = a;
  c.counter = 2;
  EXPECT_NE(a.digest(), c.digest());
  auto d = a;
  d.requests.push_back(make_request(1, 2, 16, false));
  EXPECT_NE(a.digest(), d.digest());
}

TEST(BftBlock, WireSizeIsBetaPerLink) {
  lp::BftBlock b;
  b.view = 1;
  b.sn = 10;
  for (int i = 0; i < 7; ++i) b.links.push_back(lc::Digest::of_string(std::to_string(i)));
  EXPECT_EQ(b.wire_size(), 4u + 8u + 4u + 7u * 32u);
}

TEST(BftBlock, RoundTripAndViewBinding) {
  lp::BftBlock b;
  b.view = 3;
  b.sn = 77;
  b.links.push_back(lc::Digest::of_string("x"));
  b.links.push_back(lc::Digest::of_string("y"));

  lu::ByteWriter w;
  b.encode(w);
  lu::ByteReader r(w.bytes());
  const auto back = lp::BftBlock::decode(r);
  EXPECT_EQ(back.view, 3u);
  EXPECT_EQ(back.sn, 77u);
  EXPECT_EQ(back.links, b.links);
  EXPECT_EQ(back.digest(), b.digest());

  // The digest binds the view: a view-change redo of the same (sn, links)
  // is a distinct agreement target.
  auto redo = b;
  redo.view = 4;
  EXPECT_NE(redo.digest(), b.digest());
}

TEST(BftBlock, LinkOrderMatters) {
  lp::BftBlock a;
  a.view = 1;
  a.sn = 1;
  a.links = {lc::Digest::of_string("x"), lc::Digest::of_string("y")};
  auto b = a;
  std::reverse(b.links.begin(), b.links.end());
  EXPECT_NE(a.digest(), b.digest());  // the equivocation test relies on this
}

TEST(Messages, VoteAndProofSizesMatchPaperParameters) {
  lp::VoteMsg vote;
  EXPECT_EQ(vote.wire_size(), 1u + 32u + 52u);  // round + β + (id+κ)
  lp::ProofMsg proof;
  EXPECT_EQ(proof.wire_size(), 1u + 32u + 48u);  // round + β + κ
}

TEST(Messages, ReadyAndQueryScaleWithHashCount) {
  lp::ReadyMsg ready;
  ready.datablock_hashes.resize(3);
  EXPECT_EQ(ready.wire_size(), 4u + 3u * 32u);
  lp::QueryMsg query;
  query.missing.resize(2);
  EXPECT_EQ(query.wire_size(), 4u + 2u * 32u);
}

TEST(Messages, ChunkResponseCountsClaimedChunkSize) {
  lp::ChunkResponseMsg resp;
  resp.chunk_size = 1000;
  resp.chunk.resize(10);  // materialized bytes smaller than claimed (synthetic)
  resp.proof.resize(5);
  EXPECT_EQ(resp.wire_size(), 32u + 32u + 4u + 4u + 4u + 1000u + 4u + 5u * 32u);
}

TEST(Messages, CheckpointSizeDependsOnForm) {
  lp::CheckpointMsg vote;
  vote.share = leopard::crypto::SignatureShare{};
  lp::CheckpointMsg proof;
  proof.signature = leopard::crypto::ThresholdSignature{};
  EXPECT_EQ(vote.wire_size(), 8u + 32u + 52u);
  EXPECT_EQ(proof.wire_size(), 8u + 32u + 48u);
}

TEST(Messages, ViewChangeGrowsWithNotarizedSet) {
  lp::ViewChangeMsg vc;
  const auto base = vc.wire_size();
  lp::NotarizedBlock nb;
  nb.block.links.resize(4);
  vc.notarized.push_back(nb);
  EXPECT_EQ(vc.wire_size(), base + nb.block.wire_size() + 48u);
}

TEST(Messages, NewViewCarriesAllViewChanges) {
  lp::NewViewMsg nv;
  const auto base = nv.wire_size();
  lp::ViewChangeMsg vc;
  nv.view_changes.push_back(vc);
  nv.view_changes.push_back(vc);
  EXPECT_EQ(nv.wire_size(), base + 2 * vc.wire_size());
}

TEST(Messages, ClientBatchAndAckSizes) {
  lp::ClientRequestMsg batch;
  batch.requests.push_back(make_request(1, 1, 128, false));
  batch.requests.push_back(make_request(1, 2, 128, false));
  EXPECT_EQ(batch.wire_size(), 4u + 2u * 148u);

  lp::AckMsg ack;
  ack.seqs = {1, 2, 3};
  EXPECT_EQ(ack.wire_size(), 8u + 4u + 24u);
}

TEST(Messages, BaselineBlockCarriesFullPayloads) {
  lp::BaselineBlockMsg block;
  for (int i = 0; i < 10; ++i) block.batch.push_back(make_request(1, i, 128, false));
  // Header + QC + 10 payload-bearing requests: the Eq.(1) leader cost driver.
  EXPECT_EQ(block.wire_size(), 4u + 8u + 32u + 32u + 48u + 4u + 10u * 148u);
  EXPECT_EQ(block.component(), leopard::sim::Component::kDatablock);
}

TEST(Messages, EncodedSizeMatchesWireSizeForPayloadBearingTypes) {
  // For fully materialized requests the encoded byte count must equal
  // wire_size() plus the 4-byte materialization length prefix per request
  // (kept off the wire-size arithmetic; see Request::encode).
  const auto r = make_request(3, 4, 256, true);
  lu::ByteWriter w;
  r.encode(w);
  EXPECT_EQ(w.size(), r.wire_size() + 4u);
}
