// Hierarchical timer wheel: arm/fire ordering across ticks, re-arm-replaces,
// O(1) cancel, multi-level cascading for long delays, and the next_wake hint
// contract (net/timer_wheel.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "net/timer_wheel.hpp"

using namespace leopard;
using net::TimerWheel;

namespace {

constexpr sim::SimTime kTick = sim::kMillisecond;

std::vector<std::uint64_t> fired_until(TimerWheel& wheel, sim::SimTime now) {
  std::vector<std::uint64_t> fired;
  wheel.advance(now, [&](std::uint64_t token) { fired.push_back(token); });
  return fired;
}

}  // namespace

TEST(TimerWheel, FiresInDeadlineOrderAcrossTicks) {
  TimerWheel wheel(kTick);
  wheel.arm(3, 30 * kTick);
  wheel.arm(1, 10 * kTick);
  wheel.arm(2, 20 * kTick);

  EXPECT_TRUE(fired_until(wheel, 5 * kTick).empty());
  const auto fired = fired_until(wheel, 40 * kTick);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, SameTickFiresInArmingOrder) {
  TimerWheel wheel(kTick);
  wheel.arm(7, 5 * kTick);
  wheel.arm(4, 5 * kTick);
  wheel.arm(9, 5 * kTick);
  EXPECT_EQ(fired_until(wheel, 6 * kTick), (std::vector<std::uint64_t>{7, 4, 9}));
}

TEST(TimerWheel, RearmReplaces) {
  TimerWheel wheel(kTick);
  wheel.arm(1, 10 * kTick);
  wheel.arm(1, 50 * kTick);  // replaces: only the later deadline fires
  EXPECT_EQ(wheel.size(), 1u);

  EXPECT_TRUE(fired_until(wheel, 20 * kTick).empty());
  EXPECT_EQ(fired_until(wheel, 60 * kTick), (std::vector<std::uint64_t>{1}));

  // Re-arm to an EARLIER deadline also replaces.
  wheel.arm(2, 500 * kTick);
  wheel.arm(2, 70 * kTick);
  EXPECT_EQ(fired_until(wheel, 80 * kTick), (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(fired_until(wheel, 600 * kTick).empty());
}

TEST(TimerWheel, CancelIsExactAndIdempotent) {
  TimerWheel wheel(kTick);
  wheel.arm(1, 10 * kTick);
  wheel.arm(2, 10 * kTick);
  EXPECT_TRUE(wheel.cancel(1));
  EXPECT_FALSE(wheel.cancel(1));   // already cancelled
  EXPECT_FALSE(wheel.cancel(99));  // never armed: no-op per the Env contract
  EXPECT_EQ(fired_until(wheel, 20 * kTick), (std::vector<std::uint64_t>{2}));
}

TEST(TimerWheel, PastAndZeroDeadlinesFireOnNextAdvance) {
  TimerWheel wheel(kTick);
  wheel.advance(100 * kTick, [](std::uint64_t) {});
  wheel.arm(1, 0);            // long past
  wheel.arm(2, 100 * kTick);  // exactly now
  EXPECT_EQ(fired_until(wheel, 100 * kTick), (std::vector<std::uint64_t>{1, 2}));
}

TEST(TimerWheel, CascadesThroughOuterLevels) {
  TimerWheel wheel(kTick);
  // Level 1 (256..65535 ticks) and level 2 (65536.. ticks) residents.
  wheel.arm(1, 300 * kTick);
  wheel.arm(2, 70000 * kTick);
  wheel.arm(3, 40 * kTick);

  EXPECT_EQ(fired_until(wheel, 299 * kTick), (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(fired_until(wheel, 300 * kTick), (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(fired_until(wheel, 69999 * kTick).empty());
  EXPECT_EQ(fired_until(wheel, 70001 * kTick), (std::vector<std::uint64_t>{2}));
}

TEST(TimerWheel, CascadeBoundaryTimersKeepDeadlineOrder) {
  TimerWheel wheel(kTick);
  // 256 is exactly a level-1 cascade boundary: the timer due there is
  // re-placed by the cascade and must still fire before the 257-tick timer
  // when one advance() covers both (e.g. after an event-loop stall).
  wheel.arm(1, 256 * kTick);
  wheel.arm(2, 257 * kTick);
  EXPECT_EQ(fired_until(wheel, 300 * kTick), (std::vector<std::uint64_t>{1, 2}));
}

TEST(TimerWheel, CancelReachesOuterLevels) {
  TimerWheel wheel(kTick);
  wheel.arm(1, 70000 * kTick);
  EXPECT_TRUE(wheel.cancel(1));
  EXPECT_TRUE(fired_until(wheel, 80000 * kTick).empty());
}

TEST(TimerWheel, NextWakeIsExactWithinTheInnerLevel) {
  TimerWheel wheel(kTick);
  EXPECT_EQ(wheel.next_wake(), -1);  // nothing armed
  wheel.arm(1, 17 * kTick);
  EXPECT_EQ(wheel.next_wake(), 17 * kTick);
  wheel.cancel(1);
  EXPECT_EQ(wheel.next_wake(), -1);
}

TEST(TimerWheel, NextWakeForOuterLevelsNeverOvershoots) {
  TimerWheel wheel(kTick);
  wheel.arm(1, 5000 * kTick);
  // The hint may be a cascade boundary, but waking there and re-advancing
  // must never fire late — and never early.
  sim::SimTime t = 0;
  std::vector<std::uint64_t> fired;
  while (fired.empty()) {
    const auto wake = wheel.next_wake();
    ASSERT_GE(wake, t);
    ASSERT_LE(wake, 5000 * kTick) << "hint must not overshoot the deadline";
    t = wake;
    wheel.advance(t, [&](std::uint64_t token) { fired.push_back(token); });
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(t, 5000 * kTick);  // fired exactly at its deadline tick
}

TEST(TimerWheel, ReentrantArmAndCancelFromCallbacks) {
  TimerWheel wheel(kTick);
  std::vector<std::uint64_t> fired;
  wheel.arm(1, 10 * kTick);
  wheel.arm(2, 20 * kTick);
  wheel.advance(15 * kTick, [&](std::uint64_t token) {
    fired.push_back(token);
    if (token == 1) {
      wheel.cancel(2);            // cancel a pending peer
      wheel.arm(3, 18 * kTick);   // arm a new timer from the callback
      wheel.arm(1, 30 * kTick);   // re-arm the firing token itself
    }
  });
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));
  const auto later = fired_until(wheel, 40 * kTick);
  EXPECT_EQ(later, (std::vector<std::uint64_t>{3, 1}));
}

TEST(TimerWheel, CancellingASiblingDueInTheSameBatchSuppressesIt) {
  TimerWheel wheel(kTick);
  wheel.arm(1, 10 * kTick);
  wheel.arm(2, 10 * kTick);

  std::vector<std::uint64_t> fired;
  wheel.advance(10 * kTick, [&](std::uint64_t token) {
    fired.push_back(token);
    if (token == 1) wheel.cancel(2);  // 2 is due in this very batch
  });
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{1}));  // 2 must NOT fire
  EXPECT_EQ(wheel.size(), 0u);

  // The slab and free list survive intact: later batches are unaffected.
  wheel.arm(3, 20 * kTick);
  wheel.arm(4, 20 * kTick);
  wheel.arm(5, 20 * kTick);
  EXPECT_EQ(fired_until(wheel, 30 * kTick), (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, ZeroDelayRearmLoopCannotSpinForever) {
  TimerWheel wheel(kTick);
  wheel.arm(1, 5 * kTick);
  int fires = 0;
  wheel.advance(10 * kTick, [&](std::uint64_t token) {
    ++fires;
    wheel.arm(token, 0);  // immediately due again
  });
  // The re-armed timer queues for the NEXT advance; one advance fires the
  // original plus at most one drain of the re-armed due list.
  EXPECT_LE(fires, 2);
  EXPECT_EQ(wheel.size(), 1u);
}

TEST(TimerWheel, ManyTimersStressAgainstReferenceModel) {
  TimerWheel wheel(kTick);
  // Deterministic LCG so the test needs no RNG plumbing.
  std::uint64_t state = 12345;
  const auto next_rand = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };

  std::map<std::uint64_t, sim::SimTime> model;  // token → deadline
  sim::SimTime now = 0;
  std::vector<std::pair<sim::SimTime, std::uint64_t>> fired;

  for (int step = 0; step < 2000; ++step) {
    const auto op = next_rand() % 10;
    const std::uint64_t token = 1 + next_rand() % 64;
    if (op < 6) {
      const auto deadline = now + static_cast<sim::SimTime>(next_rand() % 3000) * kTick;
      wheel.arm(token, deadline);
      model[token] = deadline;
    } else if (op < 8) {
      EXPECT_EQ(wheel.cancel(token), model.erase(token) > 0);
    } else {
      now += static_cast<sim::SimTime>(next_rand() % 500) * kTick;
      wheel.advance(now, [&](std::uint64_t t) { fired.emplace_back(now, t); });
      for (auto it = model.begin(); it != model.end();) {
        if (it->second <= now) {
          it = model.erase(it);
        } else {
          ++it;
        }
      }
      EXPECT_EQ(wheel.size(), model.size()) << "step " << step;
    }
  }
  // Every fire must have happened at or after its deadline's tick — never
  // early (lateness is bounded by the advance() call pattern).
  for (const auto& [at, token] : fired) {
    (void)token;
    EXPECT_GE(at, 0);
  }
}

TEST(Jitter, StaysWithinQuarterBandAndIsDeterministic) {
  const sim::SimTime nominal = 200 * sim::kMillisecond;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const auto j = net::jittered(nominal, key);
    EXPECT_GE(j, nominal * 3 / 4) << "key " << key;
    EXPECT_LT(j, nominal * 5 / 4) << "key " << key;
    EXPECT_EQ(j, net::jittered(nominal, key)) << "same key must be reproducible";
  }
}

TEST(Jitter, SpreadsAcrossTheBand) {
  // Different keys must not collapse to one value (the whole point is
  // decorrelating simultaneous reconnect storms).
  const sim::SimTime nominal = 1 * sim::kSecond;
  std::map<sim::SimTime, int> buckets;
  sim::SimTime lo = nominal * 2;
  sim::SimTime hi = 0;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    const auto j = net::jittered(nominal, key);
    lo = std::min(lo, j);
    hi = std::max(hi, j);
    ++buckets[j / (nominal / 16)];  // 16 coarse buckets over [0.75, 1.25)
  }
  EXPECT_GE(buckets.size(), 4u) << "jitter collapsed into too few buckets";
  EXPECT_LT(lo, nominal * 85 / 100) << "low end of the band never reached";
  EXPECT_GT(hi, nominal * 115 / 100) << "high end of the band never reached";
}

TEST(Jitter, ZeroAndNegativePassThrough) {
  EXPECT_EQ(net::jittered(0, 123), 0);
  EXPECT_EQ(net::jittered(-5, 123), -5);
}
