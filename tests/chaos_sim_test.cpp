// Adversarial scenario engine, sim side: seeded coverage-guided trace
// mutation sweeps over every protocol core, with the chaos oracles asserting
// the ICDCS safety invariants on each mutated replay, plus known-bad
// self-tests proving the oracles actually detect violations.
//
// Sweep size and seed are runtime knobs so CI can turn the same binary into a
// long fuzz job and a failure is reproducible outside the sweep:
//
//   chaos_sim_test --chaos-seed N     (or env CHAOS_SEED)
//   chaos_sim_test --chaos-traces N   (or env CHAOS_TRACES; per protocol)
//
// Every oracle failure prints the sweep seed, the case seed, and the decoded
// mutation plan; re-running with --chaos-seed reproduces the exact sweep.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "baselines/hotstuff.hpp"
#include "baselines/pbft.hpp"
#include "chaos/mutator.hpp"
#include "chaos/oracles.hpp"
#include "cluster_fixture.hpp"
#include "protocol/factory.hpp"
#include "protocol/replay.hpp"
#include "shard/sim_cluster.hpp"

using namespace leopard;
using test::ClusterOptions;
using test::LeopardCluster;

namespace {

std::uint64_t g_sweep_seed = 1;
std::uint64_t g_traces = 200;  // mutated traces per protocol

ClusterOptions leopard_opts() {
  ClusterOptions o;
  o.n = 4;
  o.protocol.datablock_requests = 50;
  o.protocol.bftblock_links = 2;
  o.protocol.datablock_max_wait = 100 * sim::kMillisecond;
  o.protocol.proposal_max_wait = 50 * sim::kMillisecond;
  o.protocol.view_timeout = 30 * sim::kSecond;
  o.client_rate_per_replica = 2000;
  o.payload_size = 64;
  o.seed = 21;
  o.record_traces = true;
  return o;
}

/// Minimal recording cluster for the baselines (cluster_fixture is
/// Leopard-shaped); mirrors baselines_test's BaselineCluster plus recorders.
template <typename Config>
struct RecordedBaseline {
  sim::Simulator sim;
  sim::Network net;
  crypto::ThresholdScheme ts;
  core::ProtocolMetrics metrics;
  Config cfg;
  std::vector<protocol::Trace> traces;
  std::vector<protocol::SimReplica> handles;
  protocol::SimClient client;

  RecordedBaseline(Config c, double rate)
      : net(sim, make_net()), ts(c.n, c.quorum(), 11), cfg(c), traces(c.n) {
    for (std::uint32_t id = 0; id < cfg.n; ++id) {
      protocol::ProtocolSpec spec;
      spec.config = cfg;
      handles.push_back(protocol::make_sim_replica(net, metrics, spec, ts, id));
      handles.back().env->set_recorder(&traces[id]);
    }
    core::ClientConfig ccfg;
    ccfg.request_rate = rate;
    ccfg.payload_size = cfg.payload_size;
    ccfg.initial_backlog = 2 * cfg.batch_size;
    client = protocol::make_sim_client(net, metrics, ccfg, 0, cfg.n, cfg.n, 77);
  }

  static sim::NetworkConfig make_net() {
    sim::NetworkConfig c;
    c.propagation_delay = 100 * sim::kMicrosecond;
    return c;
  }

  void run_for(double seconds) {
    net.start_all();
    sim.run_until(sim.now() + sim::from_seconds(seconds));
  }
};

/// One full mutation sweep against a recorded base trace. `make_fresh` builds
/// a core configured exactly like the recorded replica; `honest` is the
/// unmutated execute stream the no-conflict oracle joins against.
template <typename MakeFresh>
void run_sweep(const char* label, const protocol::Trace& base,
               const std::vector<chaos::ExecRecord>& honest, std::uint32_t n,
               MakeFresh make_fresh) {
  ASSERT_GT(base.steps.size(), 100u) << label << ": base trace is trivial";
  ASSERT_FALSE(honest.empty()) << label << ": honest run executed nothing";

  chaos::TraceMutator mutator(g_sweep_seed, n);
  std::array<std::uint64_t, chaos::kMutationClassCount> class_uses{};
  for (std::uint64_t case_seed = 1; case_seed <= g_traces; ++case_seed) {
    const auto plan = mutator.plan(case_seed, base);
    for (const auto& op : plan.ops) ++class_uses[static_cast<std::size_t>(op.cls)];

    const auto input = mutator.mutated_input(plan, base);
    protocol::ReplayEnv env;
    if (auto filter = mutator.make_filter(plan)) env.set_event_filter(std::move(filter));
    auto fresh = make_fresh();
    const auto replayed = env.replay(*fresh, input);

    const auto stream = chaos::execute_stream(replayed);
    auto verdict = chaos::check_monotonic_commit(stream, "mutated replica");
    verdict.merge(chaos::check_no_conflict(stream, "mutated replica", honest, "honest run"));
    ASSERT_TRUE(verdict.ok())
        << label << ": safety violation under mutation\n"
        << "  sweep seed " << g_sweep_seed << ", case seed " << case_seed << ", "
        << plan.describe() << "\n"
        << "  reproduce: chaos_sim_test --chaos-seed " << g_sweep_seed << "\n"
        << verdict.summary();
    mutator.record_coverage(plan, replayed);
  }

  // Coverage guidance must have engaged, and (on a full-size sweep) every
  // mutation class must have fired at least once.
  EXPECT_GT(mutator.feature_count(), 0u) << label;
  EXPECT_GE(mutator.corpus_size(), 1u) << label;
  if (g_traces >= 50) {
    for (std::uint32_t cls = 0; cls < chaos::kMutationClassCount; ++cls) {
      EXPECT_GT(class_uses[cls], 0u)
          << label << ": mutation class "
          << chaos::mutation_class_name(static_cast<chaos::MutationClass>(cls))
          << " never exercised";
    }
  }
}

}  // namespace

// --- oracle self-tests: seeded violations MUST be caught ---------------------

TEST(ChaosOracles, PassOnHonestCluster) {
  LeopardCluster cluster(leopard_opts());
  cluster.run_for(1.0);
  ASSERT_GT(cluster.metrics().executed_requests, 100u);

  std::vector<std::vector<chaos::ExecRecord>> streams;
  std::vector<std::map<std::uint64_t, crypto::Digest>> logs;
  for (std::uint32_t id = 0; id < 4; ++id) {
    streams.push_back(chaos::execute_stream(cluster.trace(id)));
    EXPECT_FALSE(streams.back().empty()) << "replica " << id;
    std::map<std::uint64_t, crypto::Digest> log;
    for (const auto& [sn, digest] : cluster.replica(id).confirmed_log()) log.emplace(sn, digest);
    logs.push_back(std::move(log));
  }
  EXPECT_TRUE(chaos::check_cross_replica_consistency(streams).ok())
      << chaos::check_cross_replica_consistency(streams).summary();
  EXPECT_TRUE(chaos::check_confirmed_logs(logs).ok());

  // Identical streams fold to identical digests; a tampered one must not.
  const auto honest_fold = chaos::fold_digest(streams[0]);
  auto tampered = streams[0];
  tampered.back().fingerprint ^= 1;
  EXPECT_NE(chaos::fold_digest(tampered), honest_fold);
}

TEST(ChaosOracles, CatchForkedCommit) {
  // Known-bad input: two replicas execute the same coordinate with different
  // blocks. The no-conflict oracle must flag it — this is the self-test that
  // keeps the sweep's green light meaningful.
  LeopardCluster cluster(leopard_opts());
  cluster.run_for(1.0);
  auto a = chaos::execute_stream(cluster.trace(0));
  ASSERT_GT(a.size(), 3u);
  auto b = a;
  b[b.size() / 2].fingerprint ^= 0xDEADBEEF;

  const auto verdict = chaos::check_no_conflict(a, "replica A", b, "replica B");
  EXPECT_FALSE(verdict.ok()) << "forked commit not detected";
  EXPECT_FALSE(chaos::check_cross_replica_consistency({a, b}).ok());

  // Divergent request counts at a shared coordinate are a fork too.
  auto c = a;
  c.front().requests += 1;
  EXPECT_FALSE(chaos::check_no_conflict(a, "replica A", c, "replica C").ok());
}

TEST(ChaosOracles, CatchNonMonotonicCommit) {
  LeopardCluster cluster(leopard_opts());
  cluster.run_for(1.0);
  auto stream = chaos::execute_stream(cluster.trace(0));
  ASSERT_GT(stream.size(), 3u);
  EXPECT_TRUE(chaos::check_monotonic_commit(stream, "honest").ok());

  // Rollback: re-execute an earlier coordinate at the tail.
  auto rollback = stream;
  rollback.push_back(rollback.front());
  EXPECT_FALSE(chaos::check_monotonic_commit(rollback, "rollback").ok());

  // Duplicate: the same coordinate twice in a row.
  auto dup = stream;
  dup.insert(dup.begin() + 1, dup[1]);
  EXPECT_FALSE(chaos::check_monotonic_commit(dup, "duplicate").ok());
}

TEST(ChaosOracles, CatchConflictingConfirmedLogs) {
  LeopardCluster cluster(leopard_opts());
  cluster.run_for(1.0);
  std::map<std::uint64_t, crypto::Digest> log_a;
  for (const auto& [sn, digest] : cluster.replica(0).confirmed_log()) log_a.emplace(sn, digest);
  ASSERT_GT(log_a.size(), 2u);

  auto log_b = log_a;
  const util::Bytes poison{0x66, 0x6F, 0x72, 0x6B};
  log_b.begin()->second = crypto::Digest::of(poison);
  EXPECT_TRUE(chaos::check_confirmed_logs({log_a, log_a}).ok());
  EXPECT_FALSE(chaos::check_confirmed_logs({log_a, log_b}).ok());
}

// --- mutation sweeps: >= g_traces mutated replays per protocol ---------------

TEST(ChaosSweep, LeopardSurvivesMutatedTraces) {
  LeopardCluster cluster(leopard_opts());
  cluster.run_for(1.0);
  ASSERT_GT(cluster.metrics().executed_requests, 100u);

  const auto& base = cluster.trace(0);
  run_sweep("leopard", base, chaos::execute_stream(base), 4, [&] {
    protocol::ProtocolSpec spec;
    spec.config = cluster.protocol_config();
    return protocol::make_protocol(spec, cluster.scheme(), 0);
  });
}

TEST(ChaosSweep, HotStuffSurvivesMutatedTraces) {
  baselines::HotStuffConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  RecordedBaseline<baselines::HotStuffConfig> cluster(cfg, 20000);
  cluster.run_for(1.0);
  ASSERT_GT(cluster.metrics.executed_requests, 1000u);

  const auto& base = cluster.traces[0];
  run_sweep("hotstuff", base, chaos::execute_stream(base), cfg.n, [&] {
    protocol::ProtocolSpec spec;
    spec.config = cfg;
    return protocol::make_protocol(spec, cluster.ts, 0);
  });
}

TEST(ChaosSweep, PbftSurvivesMutatedTraces) {
  baselines::PbftConfig cfg;
  cfg.n = 4;
  cfg.batch_size = 100;
  RecordedBaseline<baselines::PbftConfig> cluster(cfg, 20000);
  cluster.run_for(1.0);
  ASSERT_GT(cluster.metrics.executed_requests, 1000u);

  const auto& base = cluster.traces[0];
  run_sweep("pbft", base, chaos::execute_stream(base), cfg.n, [&] {
    protocol::ProtocolSpec spec;
    spec.config = cfg;
    return protocol::make_protocol(spec, cluster.ts, 0);
  });
}

// --- sharded scenarios: S = 2 instances + the cross-shard merge oracle -------

TEST(ChaosSharded, ReferenceMergeOracleCatchesTampering) {
  // Self-test for the merge oracle itself (same ethos as ChaosOracles above):
  // synthetic shard-local streams whose reference re-merge is known, then
  // known-bad perturbations that MUST change the merged stream. A green
  // sharded sweep is only meaningful if this detector actually fires.
  std::vector<std::vector<chaos::ExecRecord>> streams(2);
  for (std::uint64_t q = 0; q < 4; ++q) {
    streams[0].push_back({q, 0, 1000 + q, 3});
    if (q != 2) streams[1].push_back({q, 0, 2000 + q, 5});  // gap round at sn 2
  }
  // Shard 0 exhausts after its sn-3 record with no proof beyond it, so the
  // merge parks there: shard 1's sn 3 stays buffered and 6 records emit.
  const auto honest = shard::reference_merge(streams);
  ASSERT_EQ(honest.size(), 6u);
  // Global coordinates carry the shard in the packed ordinal; round-robin
  // order within a round.
  EXPECT_EQ(shard::ordinal_shard(honest[0].ordinal), 0u);
  EXPECT_EQ(shard::ordinal_shard(honest[1].ordinal), 1u);
  EXPECT_TRUE(chaos::check_monotonic_commit(honest, "reference").ok());

  // A forked block in one shard stream changes the merge (and would trip the
  // cross-replica no-conflict join against an honest merge).
  auto forked = streams;
  forked[0][2].fingerprint ^= 0xDEADBEEF;
  EXPECT_NE(shard::reference_merge(forked), honest);
  EXPECT_FALSE(chaos::check_no_conflict(shard::reference_merge(forked), "forked", honest,
                                        "honest")
                   .ok());

  // Dropping a mid-stream record shifts every later slot of that shard.
  auto dropped = streams;
  dropped[1].erase(dropped[1].begin() + 1);
  EXPECT_NE(shard::reference_merge(dropped), honest);

  // Swapping two rounds inside one shard breaks shard-local monotonicity —
  // the per-shard oracle must catch it before the merge is even consulted.
  auto swapped = streams[0];
  std::swap(swapped[1], swapped[2]);
  EXPECT_FALSE(chaos::check_monotonic_commit(swapped, "swapped").ok());
}

TEST(ChaosSharded, MergeOracleHoldsWithByzantineNodeInEveryShard) {
  // Physical machine 3 attacks BOTH consensus instances it hosts — and by the
  // leader rotation those are different core roles: shard-0 core 3 mounts
  // the §V case-b selective multicast, shard-1 core 2 withholds every vote
  // (exactly f = 1 silent voter). Both shards stay quorate, so every shard
  // keeps committing and the cross-shard merge must stay deterministic on
  // every replica; the attacks here are execution-honest, so the oracle can
  // include the byzantine machine rather than just the honest set.
  shard::ShardedClusterConfig cfg;
  cfg.n = 4;
  cfg.shards = 2;
  cfg.datablock_requests = 100;
  cfg.bftblock_links = 4;
  cfg.offered_load = 20000;
  cfg.proposal_max_wait = 20 * sim::kMillisecond;
  cfg.datablock_max_wait = 50 * sim::kMillisecond;
  cfg.seed = 29;
  cfg.mutate_spec = [](protocol::ProtocolSpec& spec, sim::NodeId phys, std::uint32_t shard) {
    if (phys != 3) return;
    if (shard == 0) {
      spec.byzantine.selective_recipients = 2;
    } else {
      spec.byzantine.withhold_votes = true;
    }
  };
  shard::ShardedSimCluster cluster(cfg);
  cluster.run_until(6 * sim::kSecond);

  // Both wounded instances keep committing on the honest replicas.
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
      EXPECT_FALSE(cluster.node(i).shard_streams()[s].empty())
          << "replica " << i << " shard " << s << " committed nothing";
    }
    EXPECT_FALSE(cluster.node(i).merged().empty()) << "replica " << i;
  }
  EXPECT_GT(cluster.client_acked(), 0u);
  EXPECT_FALSE(cluster.metrics().safety_violation);

  // The sharded merge oracle: per-shard monotonicity, per-node reference
  // re-merge equality, cross-replica conflict-freedom on merged streams.
  const auto oracle = cluster.check_sharded_invariants();
  EXPECT_TRUE(oracle.ok()) << oracle.summary();

  // Under the selective attack a retrieval-starved replica may legitimately
  // adopt a checkpoint and SKIP coordinates, so honest merged streams need
  // not be prefix-equal (that stricter fault-free property lives in
  // shard_test): the honest-set guarantee under attack is the conflict-free
  // join — and the join must actually overlap, or the check is vacuous.
  const auto& a = cluster.node(0).merged();
  for (std::uint32_t i = 1; i < 3; ++i) {
    const auto& b = cluster.node(i).merged();
    const auto verdict = chaos::check_no_conflict(a, "replica 0", b,
                                                  "replica " + std::to_string(i));
    EXPECT_TRUE(verdict.ok()) << verdict.summary();

    std::set<std::pair<std::uint64_t, std::uint32_t>> coords;
    for (const auto& rec : a) coords.emplace(rec.seq, rec.ordinal);
    std::size_t shared = 0;
    for (const auto& rec : b) shared += coords.count({rec.seq, rec.ordinal});
    EXPECT_GT(shared, 100u) << "replica 0 vs " << i << ": join barely overlaps";
  }
}

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* env = std::getenv("CHAOS_SEED")) g_sweep_seed = std::strtoull(env, nullptr, 10);
  if (const char* env = std::getenv("CHAOS_TRACES")) g_traces = std::strtoull(env, nullptr, 10);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--chaos-seed" && i + 1 < argc) {
      g_sweep_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--chaos-traces" && i + 1 < argc) {
      g_traces = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (g_traces == 0) g_traces = 1;
  std::printf("[chaos] sweep seed=%llu traces per protocol=%llu\n",
              static_cast<unsigned long long>(g_sweep_seed),
              static_cast<unsigned long long>(g_traces));
  return RUN_ALL_TESTS();
}
