// Experiment harness: end-to-end runs for every protocol, measurement
// windows, breakdowns, fault experiments, and cross-checks against the
// closed-form cost model.
#include <gtest/gtest.h>

#include "analysis/cost_model.hpp"
#include "harness/experiment.hpp"

namespace lh = leopard::harness;
namespace ls = leopard::sim;

namespace {
lh::ExperimentConfig quick_leopard() {
  lh::ExperimentConfig cfg;
  cfg.protocol = lh::Protocol::kLeopard;
  cfg.n = 4;
  cfg.datablock_requests = 200;
  cfg.bftblock_links = 5;
  cfg.offered_load = 20000;
  cfg.warmup = ls::kSecond;
  cfg.measure = 2 * ls::kSecond;
  return cfg;
}
}  // namespace

TEST(Harness, LeopardEndToEnd) {
  const auto r = lh::run_experiment(quick_leopard());
  EXPECT_GT(r.throughput_kreqs, 5.0);
  EXPECT_GT(r.mean_latency_sec, 0.0);
  EXPECT_FALSE(r.safety_violation);
  EXPECT_GT(r.leader_send_bps, 0.0);
  EXPECT_GT(r.leader_recv_bps, 0.0);
}

TEST(Harness, PoolSizeDoesNotChangeResults) {
  // The worker pool accelerates pure compute only; simulated time comes from
  // the CostModel. Every metric of a run must be identical at any pool size.
  auto cfg = quick_leopard();
  cfg.encode_workers = 1;
  const auto serial = lh::run_experiment(cfg);
  cfg.encode_workers = 4;
  const auto pooled = lh::run_experiment(cfg);
  EXPECT_EQ(serial.throughput_kreqs, pooled.throughput_kreqs);
  EXPECT_EQ(serial.mean_latency_sec, pooled.mean_latency_sec);
  EXPECT_EQ(serial.p99_latency_sec, pooled.p99_latency_sec);
  EXPECT_EQ(serial.leader_send_bps, pooled.leader_send_bps);
  EXPECT_EQ(serial.executed_requests, pooled.executed_requests);
  EXPECT_EQ(serial.measured_for, pooled.measured_for);
}

TEST(Harness, HotStuffEndToEnd) {
  auto cfg = quick_leopard();
  cfg.protocol = lh::Protocol::kHotStuff;
  cfg.batch_size = 200;
  const auto r = lh::run_experiment(cfg);
  EXPECT_GT(r.throughput_kreqs, 5.0);
  EXPECT_FALSE(r.safety_violation);
}

TEST(Harness, PbftEndToEnd) {
  auto cfg = quick_leopard();
  cfg.protocol = lh::Protocol::kPbft;
  cfg.batch_size = 200;
  const auto r = lh::run_experiment(cfg);
  EXPECT_GT(r.throughput_kreqs, 5.0);
}

TEST(Harness, AutoSaturationFindsCapacity) {
  auto cfg = quick_leopard();
  cfg.offered_load = 0;  // auto
  cfg.datablock_requests = 2000;
  cfg.bftblock_links = 20;
  cfg.warmup = 0;
  cfg.measure = 0;
  const auto r = lh::run_experiment(cfg);
  // Must be within a factor ~2 of the analytic estimate and nonzero.
  const auto est = lh::estimate_capacity(cfg) / 1000.0;
  EXPECT_GT(r.throughput_kreqs, 0.3 * est);
  EXPECT_LT(r.throughput_kreqs, 2.0 * est);
}

TEST(Harness, ThroughputCountsOnlyMeasurementWindow) {
  auto cfg = quick_leopard();
  cfg.measure = 1 * ls::kSecond;
  const auto r1 = lh::run_experiment(cfg);
  cfg.measure = 3 * ls::kSecond;
  const auto r2 = lh::run_experiment(cfg);
  // Rates (not totals) should agree across window lengths.
  EXPECT_NEAR(r1.throughput_kreqs, r2.throughput_kreqs, 0.5 * r1.throughput_kreqs);
}

TEST(Harness, BandwidthBreakdownIsDatablockDominated) {
  auto cfg = quick_leopard();
  cfg.offered_load = 30000;
  const auto r = lh::run_experiment(cfg);
  // Table III: the leader's receive bandwidth is dominated by datablocks.
  const auto db = r.leader_breakdown.recv_bps[static_cast<std::size_t>(
      ls::Component::kDatablock)];
  EXPECT_GT(db / r.leader_breakdown.total_recv(), 0.5);
  // Votes are a tiny fraction (paper: < 1%).
  const auto votes =
      r.leader_breakdown.recv_bps[static_cast<std::size_t>(ls::Component::kVote)];
  EXPECT_LT(votes / r.leader_breakdown.total_recv(), 0.05);
}

TEST(Harness, LatencyBreakdownSumsToOne) {
  const auto r = lh::run_experiment(quick_leopard());
  const auto total = r.frac_generation + r.frac_dissemination + r.frac_agreement +
                     r.frac_response;
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(r.frac_dissemination + r.frac_generation, 0.0);
}

TEST(Harness, SelectiveAttackProducesRetrievalStats) {
  auto cfg = quick_leopard();
  cfg.byzantine_count = 1;
  cfg.byzantine_spec.selective_recipients = 2;
  cfg.warmup = 2 * ls::kSecond;
  cfg.measure = 4 * ls::kSecond;
  const auto r = lh::run_experiment(cfg);
  EXPECT_GT(r.datablocks_recovered, 0u);
  EXPECT_GT(r.mean_recovery_time_sec, 0.0);
  EXPECT_GT(r.recover_bytes_per_datablock, 0.0);
  EXPECT_GT(r.respond_bytes_per_response, 0.0);
  // Erasure coding: a single response is much smaller than a full recovery.
  EXPECT_LT(r.respond_bytes_per_response, r.recover_bytes_per_datablock);
  EXPECT_FALSE(r.safety_violation);
}

TEST(Harness, LeaderCrashYieldsViewChangeStats) {
  auto cfg = quick_leopard();
  cfg.crash_leader_at = 2 * ls::kSecond;
  cfg.view_timeout = 2 * ls::kSecond;
  cfg.client_resubmit_timeout = 2 * ls::kSecond;
  cfg.warmup = ls::kSecond;
  cfg.measure = 10 * ls::kSecond;
  const auto r = lh::run_experiment(cfg);
  EXPECT_GE(r.view_changes, 1u);
  EXPECT_GT(r.view_change_duration_sec, 0.0);
  EXPECT_GT(r.vc_total_bytes, 0.0);
  EXPECT_GT(r.vc_leader_send_bytes, 0.0);
  EXPECT_FALSE(r.safety_violation);
}

TEST(Harness, SharedDuplexHalvesLeopardThroughputInBits) {
  // Fig. 10 premise: under a shared (NetEm-like) link of capacity C, Leopard
  // confirms ≈ C/2 bits per second.
  auto cfg = quick_leopard();
  cfg.n = 4;
  cfg.bandwidth_bps = 40e6;  // 40 Mbps
  cfg.shared_duplex = true;
  cfg.offered_load = 0;
  cfg.warmup = 0;
  cfg.measure = 0;
  const auto r = lh::run_experiment(cfg);
  EXPECT_GT(r.throughput_mbps, 10.0);
  EXPECT_LT(r.throughput_mbps, 28.0);  // ≈ 20 Mbps = C/2, with slack
}

TEST(Harness, HotStuffLeaderBandwidthGrowsWithN) {
  auto run = [](std::uint32_t n) {
    lh::ExperimentConfig cfg;
    cfg.protocol = lh::Protocol::kHotStuff;
    cfg.n = n;
    cfg.batch_size = 400;
    cfg.warmup = ls::kSecond;
    cfg.measure = 2 * ls::kSecond;
    return lh::run_experiment(cfg);
  };
  const auto r4 = run(4);
  const auto r16 = run(16);
  // Fig. 2: leader egress grows with scale while throughput sags.
  EXPECT_GT(r16.leader_send_bps, 1.5 * r4.leader_send_bps);
  EXPECT_LT(r16.throughput_kreqs, r4.throughput_kreqs * 1.05);
}

TEST(Harness, LeopardLeaderBandwidthStaysFlat) {
  auto run = [](std::uint32_t n) {
    lh::ExperimentConfig cfg;
    cfg.n = n;
    cfg.datablock_requests = 500;
    cfg.bftblock_links = 10;
    cfg.offered_load = 20000;
    cfg.warmup = 2 * ls::kSecond;
    cfg.measure = 3 * ls::kSecond;
    return lh::run_experiment(cfg);
  };
  const auto r4 = run(4);
  const auto r16 = run(16);
  // Fig. 11: Leopard's leader bandwidth does not blow up with n at equal
  // load. The leader's traffic is dominated by datablock ingress (flat in n);
  // only the small proposal/proof multicast grows with n. HotStuff's leader
  // grows ~linearly in total instead.
  const double total4 = r4.leader_send_bps + r4.leader_recv_bps;
  const double total16 = r16.leader_send_bps + r16.leader_recv_bps;
  EXPECT_LT(total16, 1.6 * total4);
  EXPECT_NEAR(r16.throughput_kreqs, r4.throughput_kreqs, 0.35 * r4.throughput_kreqs);
}

TEST(Harness, MeasuredReplicaTrafficMatchesCostModel) {
  // Cross-check: measured non-leader send+recv per confirmed bit ≈ c_R from
  // Eq. (3) (≈ 2 plus small overheads).
  auto cfg = quick_leopard();
  cfg.n = 7;
  cfg.offered_load = 30000;
  cfg.datablock_requests = 500;
  cfg.bftblock_links = 10;
  cfg.warmup = 2 * ls::kSecond;
  cfg.measure = 4 * ls::kSecond;
  const auto r = lh::run_experiment(cfg);

  const double confirmed_bits_per_sec = r.throughput_kreqs * 1000 * 128 * 8;
  const double replica_bits_per_sec =
      r.replica_breakdown.total_send() + r.replica_breakdown.total_recv();
  const double measured_cr = replica_bits_per_sec / confirmed_bits_per_sec;

  leopard::analysis::LeopardParams p;
  p.alpha_bytes = 500.0 * 128.0;
  p.tau = 10;
  const double model_cr = leopard::analysis::leopard_replica_cost_per_bit(7, p);
  // Allow for framing, acks, ready round and client ingress (not in Eq. (3)).
  EXPECT_GT(measured_cr, 0.8 * model_cr);
  EXPECT_LT(measured_cr, 2.2 * model_cr);
}
