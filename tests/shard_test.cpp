// Property tests for the cross-shard sequencer (src/shard/sequencer.hpp):
// the merged global stream must be a pure function of the per-shard commit
// streams — byte-identical across every arrival interleaving — with
// straggler, empty-round, duplicate-re-emission, and recovery
// (advance_to) paths all preserving that determinism.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/oracles.hpp"
#include "proto/messages.hpp"
#include "shard/sequencer.hpp"
#include "shard/sim_cluster.hpp"
#include "util/check.hpp"

namespace leopard {
namespace {

/// Minimal payload carrying a unique identity so emitted streams can be
/// compared record-for-record.
struct TagPayload final : sim::Payload {
  std::uint64_t tag = 0;
  explicit TagPayload(std::uint64_t t) : tag(t) {}
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
  [[nodiscard]] sim::Component component() const override { return sim::Component::kMisc; }
};

/// One shard-local commit record destined for Sequencer::push.
struct In {
  std::uint32_t shard;
  std::uint64_t sseq;
  std::uint32_t sordinal;
  std::uint64_t tag;  // payload identity
};

protocol::Execute make_exec(const In& in) {
  protocol::Execute exec;
  exec.block = std::make_shared<TagPayload>(in.tag);
  exec.requests = in.tag % 7 + 1;
  exec.seq = in.sseq;
  exec.ordinal = in.sordinal;
  return exec;
}

/// Flattened emitted record for equality comparison.
struct Out {
  std::uint32_t shard;
  std::uint64_t sseq;
  std::uint32_t sordinal;
  std::uint64_t gseq;
  std::uint32_t gordinal;
  std::uint64_t requests;
  std::uint64_t tag;

  friend bool operator==(const Out&, const Out&) = default;
};

Out flatten(const shard::GlobalRecord& r) {
  const auto* payload = dynamic_cast<const TagPayload*>(r.exec.block.get());
  util::expects(payload != nullptr, "test payload type");
  return Out{r.shard,          r.shard_seq,        r.shard_ordinal, r.exec.seq,
             r.exec.ordinal,   r.exec.requests,    payload->tag};
}

/// Digest fold over the emitted stream (order-sensitive).
std::uint64_t fold(std::uint64_t acc, const Out& o) {
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  acc = mix(acc ^ o.shard);
  acc = mix(acc ^ o.sseq);
  acc = mix(acc ^ o.sordinal);
  acc = mix(acc ^ o.gseq);
  acc = mix(acc ^ o.gordinal);
  acc = mix(acc ^ o.requests);
  acc = mix(acc ^ o.tag);
  return acc;
}

/// Feeds `inputs` (already a valid interleaving: per-shard order preserved)
/// into a fresh sequencer and returns the emitted stream.
std::vector<Out> run_merge(std::uint32_t shards, const std::vector<In>& inputs) {
  std::vector<Out> emitted;
  shard::Sequencer seq(shards,
                       [&](const shard::GlobalRecord& r) { emitted.push_back(flatten(r)); });
  for (const auto& in : inputs) seq.push(in.shard, make_exec(in));
  return emitted;
}

/// Random interleaving of per-shard streams that preserves each shard's
/// internal order (the only delivery constraint the transport guarantees).
std::vector<In> interleave(const std::vector<std::vector<In>>& streams, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> next(streams.size(), 0);
  std::vector<In> out;
  for (;;) {
    std::vector<std::size_t> ready;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (next[s] < streams[s].size()) ready.push_back(s);
    }
    if (ready.empty()) break;
    const auto pick = ready[rng() % ready.size()];
    out.push_back(streams[pick][next[pick]++]);
  }
  return out;
}

/// A workload with multi-ordinal rounds, gap rounds, and uneven shard
/// speeds. Shard 0: dense, two ordinals per sn. Shard 1: gap at sn 1 and
/// sn 3. Shard 2: slow, single records.
std::vector<std::vector<In>> reference_streams() {
  std::vector<std::vector<In>> streams(3);
  std::uint64_t tag = 1;
  for (std::uint64_t q = 0; q <= 5; ++q) {
    streams[0].push_back({0, q, 0, tag++});
    streams[0].push_back({0, q, 1, tag++});
  }
  for (std::uint64_t q : {0ull, 2ull, 4ull, 5ull}) {
    streams[1].push_back({1, q, 0, tag++});
  }
  for (std::uint64_t q = 0; q <= 5; ++q) {
    streams[2].push_back({2, q, 0, tag++});
  }
  return streams;
}

TEST(Sequencer, MergeIsArrivalOrderInvariant) {
  const auto streams = reference_streams();
  const auto reference = run_merge(3, interleave(streams, 0));
  ASSERT_FALSE(reference.empty());
  std::uint64_t reference_digest = 0;
  for (const auto& o : reference) reference_digest = fold(reference_digest, o);

  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const auto emitted = run_merge(3, interleave(streams, seed));
    EXPECT_EQ(emitted, reference) << "interleaving seed " << seed;
    std::uint64_t digest = 0;
    for (const auto& o : emitted) digest = fold(digest, o);
    EXPECT_EQ(digest, reference_digest) << "interleaving seed " << seed;
  }
}

TEST(Sequencer, GlobalCoordinatesStrictlyIncrease) {
  const auto streams = reference_streams();
  const auto emitted = run_merge(3, interleave(streams, 7));
  for (std::size_t i = 1; i < emitted.size(); ++i) {
    const auto prev = std::pair{emitted[i - 1].gseq, emitted[i - 1].gordinal};
    const auto cur = std::pair{emitted[i].gseq, emitted[i].gordinal};
    EXPECT_LT(prev, cur) << "at index " << i;
  }
  // Round-robin: within one gseq, shards appear in ascending order.
  for (std::size_t i = 1; i < emitted.size(); ++i) {
    if (emitted[i].gseq == emitted[i - 1].gseq) {
      EXPECT_LE(emitted[i - 1].shard, emitted[i].shard);
    }
  }
}

TEST(Sequencer, StragglerBlocksUntilProofThenCatchesUp) {
  std::vector<Out> emitted;
  shard::Sequencer seq(2, [&](const shard::GlobalRecord& r) { emitted.push_back(flatten(r)); });

  // Shard 0 races ahead through sn 3; shard 1 is silent.
  std::uint64_t tag = 100;
  for (std::uint64_t q = 0; q <= 3; ++q) {
    seq.push(0, make_exec({0, q, 0, tag++}));
  }
  // Round 0 of shard 0 is proven (frontier 3 > 0) and emits; the cursor
  // then parks on shard 1 with everything else buffered.
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].shard, 0u);
  EXPECT_EQ(seq.round(), 0u);
  EXPECT_EQ(seq.cursor_shard(), 1u);
  EXPECT_TRUE(seq.has_backlog());

  // Shard 1 commits at sn 0: its slot fills but is not yet proven closed.
  seq.push(1, make_exec({1, 0, 0, tag++}));
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(seq.cursor_shard(), 1u);

  // Shard 1 commits at sn 1: proves round 0 closed, releasing round 1 of
  // both shards; sn 1 itself stays open (no proof beyond it yet).
  seq.push(1, make_exec({1, 1, 0, tag++}));
  ASSERT_EQ(emitted.size(), 4u);
  EXPECT_EQ(emitted[2].shard, 0u);
  EXPECT_EQ(emitted[2].gseq, 1u);
  EXPECT_EQ(emitted[3].shard, 1u);
  EXPECT_EQ(seq.round(), 1u);
  EXPECT_EQ(seq.cursor_shard(), 1u);
}

TEST(Sequencer, IdleSystemHasNoBacklog) {
  shard::Sequencer seq(4, [](const shard::GlobalRecord&) {});
  EXPECT_FALSE(seq.has_backlog());
}

TEST(Sequencer, EmptyRoundsPassThrough) {
  // Shard 1 skips sn 1 entirely (checkpoint-adoption-style gap): round 1
  // gets an empty shard-1 slot and the merge does not stall.
  std::vector<Out> emitted;
  shard::Sequencer seq(2, [&](const shard::GlobalRecord& r) { emitted.push_back(flatten(r)); });
  seq.push(0, make_exec({0, 0, 0, 1}));
  seq.push(0, make_exec({0, 1, 0, 2}));
  seq.push(0, make_exec({0, 2, 0, 3}));
  seq.push(1, make_exec({1, 0, 0, 4}));
  seq.push(1, make_exec({1, 2, 0, 5}));
  seq.push(0, make_exec({0, 3, 0, 6}));
  seq.push(1, make_exec({1, 3, 0, 7}));
  // Rounds 0..2 fully merged: shard 1 contributed nothing at sn 1 yet the
  // cursor crossed (1, 1) on the strength of its sn-2 commit.
  const std::vector<std::uint64_t> tags_in_order = {1, 4, 2, 3, 5, 6};
  ASSERT_EQ(emitted.size(), tags_in_order.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i].tag, tags_in_order[i]) << "at index " << i;
  }
}

TEST(Sequencer, DuplicateReemissionsAreDropped) {
  std::vector<Out> emitted;
  shard::Sequencer seq(2, [&](const shard::GlobalRecord& r) { emitted.push_back(flatten(r)); });
  seq.push(0, make_exec({0, 0, 0, 1}));
  seq.push(0, make_exec({0, 1, 0, 2}));
  seq.push(1, make_exec({1, 0, 0, 3}));
  seq.push(1, make_exec({1, 1, 0, 4}));
  const auto emitted_before = seq.emitted();
  ASSERT_GE(emitted_before, 2u);

  // A restarted core replays its whole stream; everything already merged
  // must be dropped without re-emission.
  seq.push(0, make_exec({0, 0, 0, 1}));
  seq.push(1, make_exec({1, 0, 0, 3}));
  EXPECT_EQ(seq.emitted(), emitted_before);
  EXPECT_EQ(seq.duplicates_dropped(), 2u);
}

TEST(Sequencer, AdvanceToResumesExactlyAfterTail) {
  const auto streams = reference_streams();
  const auto full = run_merge(3, interleave(streams, 3));
  ASSERT_GT(full.size(), 4u);

  // Recover from the durable tail at each emitted position: a fresh
  // sequencer seeded with advance_to(tail) and fed the complete shard
  // streams must emit exactly the suffix after that tail.
  for (std::size_t cut = 0; cut + 1 < full.size(); ++cut) {
    const auto& tail = full[cut];
    std::vector<Out> resumed;
    shard::Sequencer seq(3, [&](const shard::GlobalRecord& r) { resumed.push_back(flatten(r)); });
    seq.advance_to(tail.gseq, tail.gordinal);
    for (const auto& in : interleave(streams, cut)) seq.push(in.shard, make_exec(in));
    const std::vector<Out> expected(full.begin() + static_cast<std::ptrdiff_t>(cut) + 1,
                                    full.end());
    EXPECT_EQ(resumed, expected) << "tail cut at " << cut;
  }
}

TEST(Sequencer, AdvanceToBehindCursorIsNoOp) {
  std::vector<Out> emitted;
  shard::Sequencer seq(2, [&](const shard::GlobalRecord& r) { emitted.push_back(flatten(r)); });
  seq.push(0, make_exec({0, 0, 0, 1}));
  seq.push(0, make_exec({0, 1, 0, 2}));
  seq.push(1, make_exec({1, 0, 0, 3}));
  seq.push(1, make_exec({1, 1, 0, 4}));
  const auto round_before = seq.round();
  const auto emitted_before = emitted.size();
  seq.advance_to(0, shard::pack_ordinal(0, 0));
  EXPECT_EQ(seq.round(), round_before);
  EXPECT_EQ(emitted.size(), emitted_before);
}

TEST(Sequencer, OrdinalPackingRoundTrips) {
  EXPECT_EQ(shard::pack_ordinal(0, 0), 0u);
  EXPECT_EQ(shard::ordinal_shard(shard::pack_ordinal(7, 123)), 7u);
  EXPECT_EQ(shard::ordinal_within(shard::pack_ordinal(7, 123)), 123u);
  EXPECT_EQ(shard::ordinal_shard(shard::pack_ordinal(shard::kMaxShards - 1,
                                                     shard::kMaxShardOrdinal)),
            shard::kMaxShards - 1);
  // Packing preserves lexicographic (shard, ordinal) order.
  EXPECT_LT(shard::pack_ordinal(1, shard::kMaxShardOrdinal), shard::pack_ordinal(2, 0));
}

TEST(Sequencer, ShardOfIsStableAndBounded) {
  for (std::uint32_t shards : {1u, 2u, 4u, 16u}) {
    std::vector<std::uint64_t> counts(shards, 0);
    for (std::uint64_t c = 0; c < 4; ++c) {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        const auto s = shard::shard_of(c, i, shards);
        ASSERT_LT(s, shards);
        // Deterministic: same inputs, same shard.
        ASSERT_EQ(s, shard::shard_of(c, i, shards));
        ++counts[s];
      }
    }
    // Coarse balance: no shard starves (each gets at least a quarter of its
    // fair share over 4000 draws).
    for (const auto count : counts) {
      EXPECT_GE(count, 4000 / shards / 4) << "shards=" << shards;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end sharded simulation: S unmodified Leopard cores per machine,
// rotated leaders, hash-partitioned clients, per-node merge.
// ---------------------------------------------------------------------------

TEST(ShardedSim, TwoShardClusterCommitsOnEveryShardAndMergesConsistently) {
  shard::ShardedClusterConfig cfg;
  cfg.n = 4;
  cfg.shards = 2;
  cfg.datablock_requests = 100;
  cfg.bftblock_links = 4;
  cfg.offered_load = 30000;
  cfg.proposal_max_wait = 20 * sim::kMillisecond;
  cfg.seed = 42;
  shard::ShardedSimCluster cluster(cfg);
  cluster.run_until(6 * sim::kSecond);

  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    for (std::uint32_t s = 0; s < cfg.shards; ++s) {
      EXPECT_FALSE(cluster.node(i).shard_streams()[s].empty())
          << "replica " << i << " shard " << s << " committed nothing";
    }
    EXPECT_FALSE(cluster.node(i).merged().empty());
  }
  EXPECT_GT(cluster.client_acked(), 0u);
  EXPECT_FALSE(cluster.metrics().safety_violation);

  const auto oracle = cluster.check_sharded_invariants();
  EXPECT_TRUE(oracle.ok()) << oracle.summary();

  // Honest fault-free run: merged streams must agree on their common
  // prefix, and the folds over that prefix must match (the sim analogue of
  // the deployment report's merged exec_digest equality).
  const auto& a = cluster.node(0).merged();
  for (std::uint32_t i = 1; i < cfg.n; ++i) {
    const auto& b = cluster.node(i).merged();
    const auto common = std::min(a.size(), b.size());
    ASSERT_GT(common, 0u);
    const std::vector<chaos::ExecRecord> pa(a.begin(),
                                            a.begin() + static_cast<std::ptrdiff_t>(common));
    const std::vector<chaos::ExecRecord> pb(b.begin(),
                                            b.begin() + static_cast<std::ptrdiff_t>(common));
    EXPECT_EQ(pa, pb) << "replica 0 vs replica " << i;
    EXPECT_EQ(chaos::fold_digest(pa), chaos::fold_digest(pb));
  }
}

TEST(ShardedSim, ShardedRunIsSeedDeterministic) {
  shard::ShardedClusterConfig cfg;
  cfg.n = 4;
  cfg.shards = 2;
  cfg.datablock_requests = 100;
  cfg.bftblock_links = 4;
  cfg.offered_load = 20000;
  cfg.proposal_max_wait = 20 * sim::kMillisecond;
  cfg.seed = 7;

  auto run_once = [&] {
    shard::ShardedSimCluster cluster(cfg);
    cluster.run_until(3 * sim::kSecond);
    return cluster.node(0).merged();
  };
  const auto first = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, run_once());
}

TEST(ShardedSim, IdleShardUnblocksViaNoopFill) {
  // A quiet cluster where only shard 0 receives traffic: the merge parks on
  // idle shard 1 with backlog, the stall tick injects no-op requests, and
  // the global stream eventually carries every shard-0 request — the
  // Raptr-style empty/filler slot liveness path, end to end through real
  // consensus.
  shard::ShardedClusterConfig cfg;
  cfg.n = 4;
  cfg.shards = 2;
  cfg.spawn_clients = false;
  cfg.datablock_requests = 50;
  cfg.bftblock_links = 2;
  cfg.stall_tick = 50 * sim::kMillisecond;
  cfg.proposal_max_wait = 10 * sim::kMillisecond;
  cfg.datablock_max_wait = 20 * sim::kMillisecond;
  cfg.seed = 11;
  shard::ShardedSimCluster cluster(cfg);

  // Nothing offered: a fully idle system must not spin no-ops.
  cluster.run_until(1 * sim::kSecond);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    EXPECT_EQ(cluster.node(i).noops_injected(), 0u) << "replica " << i;
    EXPECT_TRUE(cluster.node(i).merged().empty());
  }

  // 60 requests into shard 0 only (via machine 0's local core).
  for (std::uint64_t k = 0; k < 60; ++k) {
    proto::Request req;
    req.client_id = shard::kNoopClientBase + 100;
    req.seq = k;
    req.payload_size = 16;
    cluster.node(0).inject_local_request(0, std::move(req));
  }
  cluster.run_until(12 * sim::kSecond);

  std::uint64_t total_noops = 0;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    total_noops += cluster.node(i).noops_injected();
  }
  EXPECT_GT(total_noops, 0u) << "stall tick never fired a no-op";

  // Every shard-0 request reached the merged stream on every replica, and
  // shard 1 contributed its no-op filler commits.
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    const auto& merged = cluster.node(i).merged();
    std::uint64_t shard0_requests = 0;
    bool shard1_present = false;
    for (const auto& rec : merged) {
      if (shard::ordinal_shard(rec.ordinal) == 0) {
        shard0_requests += rec.requests;
      } else {
        shard1_present = true;
      }
    }
    EXPECT_GE(shard0_requests, 60u) << "replica " << i;
    EXPECT_TRUE(shard1_present) << "replica " << i;
  }
  const auto oracle = cluster.check_sharded_invariants();
  EXPECT_TRUE(oracle.ok()) << oracle.summary();

  // Once all real records are merged, injection quiesces: filler-only
  // backlog (a no-op commit lands one round ahead of the cursor) must NOT
  // re-arm the stall detector into a perpetual heartbeat.
  cluster.run_until(16 * sim::kSecond);
  std::uint64_t noops_at_16s = 0;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    noops_at_16s += cluster.node(i).noops_injected();
  }
  cluster.run_until(20 * sim::kSecond);
  std::uint64_t noops_at_20s = 0;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    noops_at_20s += cluster.node(i).noops_injected();
  }
  EXPECT_EQ(noops_at_20s, noops_at_16s) << "no-op injection never quiesced";
}

TEST(Sequencer, RejectsOutOfRangeUse) {
  shard::Sequencer seq(2, [](const shard::GlobalRecord&) {});
  EXPECT_THROW(seq.push(2, make_exec({0, 0, 0, 1})), util::ContractViolation);
  protocol::Execute bad = make_exec({0, 0, 0, 1});
  bad.ordinal = shard::kMaxShardOrdinal + 1;
  EXPECT_THROW(seq.push(0, bad), util::ContractViolation);
  EXPECT_THROW(shard::Sequencer(0, [](const shard::GlobalRecord&) {}),
               util::ContractViolation);
}

}  // namespace
}  // namespace leopard
