// Persistence layer: WAL append/recovery round trips, a crash-point sweep
// truncating the log at every byte offset, corruption vs torn-tail handling,
// fault injection through the StoreIo seam (short writes, ENOSPC, fsync and
// rename failures), snapshot generations + GC, and replay determinism
// (store/replica_store.hpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "proto/messages.hpp"
#include "store/replica_store.hpp"
#include "store/state_sync.hpp"
#include "store/store_io.hpp"
#include "store/wal_record.hpp"
#include "util/bytes.hpp"

using namespace leopard;
using store::FsyncPolicy;
using store::RecoverMode;
using store::RecoveryResult;
using store::ReplicaStore;
using store::StoreOptions;

namespace {

std::string temp_dir() {
  char tmpl[] = "/tmp/leopard_store_test_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir;
}

crypto::Digest digest_of(std::uint8_t fill) {
  crypto::Sha256::DigestBytes b{};
  b.fill(fill);
  return crypto::Digest(b);
}

util::Bytes frame_of(std::uint8_t fill, std::size_t size) {
  return util::Bytes(size, fill);
}

util::Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return util::Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  EXPECT_TRUE(out.good()) << path;
}

std::size_t count_snapshots(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& name : store::StoreIo::system().list_dir(dir)) {
    if (name.size() > 5 && name.rfind("snap-", 0) == 0 &&
        name.find(".snap") == name.size() - 5) {
      ++n;
    }
  }
  return n;
}

/// Appends `count` varied entries; returns the independently computed fold.
crypto::Digest append_entries(ReplicaStore& store, std::uint64_t count,
                              std::uint64_t seq_base, crypto::Digest from) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bd = digest_of(static_cast<std::uint8_t>(seq_base + i));
    const auto frame = frame_of(static_cast<std::uint8_t>(i), 40 + (i % 7) * 13);
    EXPECT_TRUE(store.append(seq_base + i, static_cast<std::uint32_t>(i % 3), bd,
                             /*requests=*/10 + i, frame, /*now=*/0));
    from = store::fold_exec_digest(from, bd);
  }
  return from;
}

/// StoreIo fault injector: delegates to the real filesystem, with knobs for
/// the failures real disks produce.
class FaultIo final : public store::StoreIo {
 public:
  std::int64_t append_byte_budget = -1;  // >= 0: ENOSPC once exhausted
  std::size_t short_append_next = 0;     // next append writes only this many
  bool fail_fsync = false;
  bool fail_rename = false;

  int open_rw(const std::string& path) override { return sys().open_rw(path); }

  std::int64_t append(int fd, std::span<const std::uint8_t> data) override {
    std::span<const std::uint8_t> slice = data;
    if (short_append_next > 0 && short_append_next < slice.size()) {
      slice = slice.first(short_append_next);
      short_append_next = 0;
    }
    if (append_byte_budget >= 0) {
      if (append_byte_budget == 0) {
        errno = ENOSPC;
        return -1;
      }
      if (static_cast<std::int64_t>(slice.size()) > append_byte_budget) {
        slice = slice.first(static_cast<std::size_t>(append_byte_budget));
      }
    }
    const auto n = sys().append(fd, slice);
    if (append_byte_budget >= 0 && n > 0) append_byte_budget -= n;
    return n;
  }

  bool pread_exact(int fd, std::uint64_t offset, std::span<std::uint8_t> buf) override {
    return sys().pread_exact(fd, offset, buf);
  }
  bool fsync(int fd) override {
    if (fail_fsync) {
      errno = EIO;
      return false;
    }
    return sys().fsync(fd);
  }
  bool ftruncate(int fd, std::uint64_t size) override { return sys().ftruncate(fd, size); }
  std::int64_t file_size(int fd) override { return sys().file_size(fd); }
  void close(int fd) override { sys().close(fd); }
  bool rename(const std::string& from, const std::string& to) override {
    if (fail_rename) {
      errno = EIO;
      return false;
    }
    return sys().rename(from, to);
  }
  bool unlink(const std::string& path) override { return sys().unlink(path); }
  bool mkdirs(const std::string& path) override { return sys().mkdirs(path); }
  bool fsync_dir(const std::string& path) override { return sys().fsync_dir(path); }
  std::vector<std::string> list_dir(const std::string& path) override {
    return sys().list_dir(path);
  }

 private:
  static StoreIo& sys() { return StoreIo::system(); }
};

StoreOptions options(const std::string& dir, store::StoreIo* io = nullptr) {
  StoreOptions opts;
  opts.dir = dir;
  opts.snapshot_every = 0;  // snapshots off unless a test opts in
  opts.io = io;
  return opts;
}

}  // namespace

TEST(Store, FreshStartAppendAndReopen) {
  const auto dir = temp_dir();
  crypto::Digest expect;
  {
    ReplicaStore store(options(dir));
    const auto rec = store.open(RecoverMode::kStrict);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.status, RecoveryResult::Status::kFreshStart);
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_EQ(store.tail_coord(), (std::pair<std::uint64_t, std::uint32_t>{0, 0}));

    expect = append_entries(store, 5, /*seq_base=*/1, crypto::Digest{});
    EXPECT_EQ(store.entries(), 5u);
    EXPECT_EQ(store.exec_digest(), expect);
    EXPECT_EQ(store.executed_requests(), 10u + 11 + 12 + 13 + 14);
    EXPECT_EQ(store.tail_coord(), (std::pair<std::uint64_t, std::uint32_t>{5, 1}));

    std::vector<store::WalEntry> out;
    ASSERT_TRUE(store.read_entries(0, 5, out));
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].index, 0u);
    EXPECT_EQ(out[4].seq, 5u);
    EXPECT_EQ(out[2].frame, frame_of(2, 40 + 2 * 13));
    EXPECT_EQ(out[4].post_digest, expect);

    crypto::Digest d;
    ASSERT_TRUE(store.digest_at(0, d));
    EXPECT_EQ(d, crypto::Digest{});
    ASSERT_TRUE(store.digest_at(5, d));
    EXPECT_EQ(d, expect);
    ASSERT_TRUE(store.digest_at(3, d));
    EXPECT_EQ(d, out[2].post_digest);
    EXPECT_FALSE(store.digest_at(6, d));
    EXPECT_FALSE(store.read_entries(3, 2, out));
    EXPECT_FALSE(store.read_entries(0, 6, out));
  }
  {
    ReplicaStore store(options(dir));
    const auto rec = store.open(RecoverMode::kStrict);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.status, RecoveryResult::Status::kRecovered);
    EXPECT_EQ(rec.entries, 5u);
    EXPECT_EQ(rec.torn_bytes, 0u);
    EXPECT_EQ(store.exec_digest(), expect);
    EXPECT_EQ(store.executed_requests(), 10u + 11 + 12 + 13 + 14);
    EXPECT_EQ(store.tail_coord(), (std::pair<std::uint64_t, std::uint32_t>{5, 1}));
  }
}

TEST(Store, ReplayIsDeterministicAcrossDirectories) {
  const auto dir_a = temp_dir();
  const auto dir_b = temp_dir();
  crypto::Digest a;
  crypto::Digest b;
  for (const auto& [dir, out] : {std::pair{dir_a, &a}, std::pair{dir_b, &b}}) {
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    append_entries(store, 7, 1, crypto::Digest{});
    *out = store.exec_digest();
  }
  EXPECT_EQ(a, b);
  // Reopening replays to the identical state.
  ReplicaStore store(options(dir_a));
  ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
  EXPECT_EQ(store.exec_digest(), a);
}

TEST(Store, CrashPointSweepAtEveryByteOffset) {
  // Build a reference log, remembering the state after every record.
  const auto dir = temp_dir();
  std::vector<std::uint64_t> boundary{0};  // wal size after k entries
  std::vector<crypto::Digest> digest_after{crypto::Digest{}};
  {
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    crypto::Digest d;
    for (std::uint64_t i = 0; i < 6; ++i) {
      const auto bd = digest_of(static_cast<std::uint8_t>(0x40 + i));
      ASSERT_TRUE(store.append(i + 1, 0, bd, 5, frame_of(0x7F, 30 + i * 11), 0));
      d = store::fold_exec_digest(d, bd);
      boundary.push_back(store.wal_bytes());
      digest_after.push_back(d);
    }
  }
  const auto wal = read_file(dir + "/wal.log");
  ASSERT_EQ(wal.size(), boundary.back());

  // A crash can tear the tail at ANY byte. Every truncation must recover the
  // longest whole-record prefix — silently, in strict mode (a torn tail is
  // not corruption).
  const auto sweep_dir = temp_dir();
  for (std::size_t len = 0; len <= wal.size(); ++len) {
    write_file(sweep_dir + "/wal.log",
               std::span<const std::uint8_t>(wal).first(len));
    ReplicaStore store(options(sweep_dir));
    const auto rec = store.open(RecoverMode::kStrict);
    ASSERT_TRUE(rec.ok()) << "crash point " << len << ": " << rec.detail;

    std::size_t expect_entries = 0;
    while (expect_entries + 1 < boundary.size() && boundary[expect_entries + 1] <= len) {
      ++expect_entries;
    }
    EXPECT_EQ(store.entries(), expect_entries) << "crash point " << len;
    EXPECT_EQ(store.exec_digest(), digest_after[expect_entries]) << "crash point " << len;
    EXPECT_EQ(store.wal_bytes(), boundary[expect_entries]) << "crash point " << len;
    EXPECT_EQ(rec.torn_bytes, len - boundary[expect_entries]) << "crash point " << len;
    // The torn suffix must actually be gone from disk.
    EXPECT_EQ(read_file(sweep_dir + "/wal.log").size(), boundary[expect_entries]);
  }
}

TEST(Store, BitFlipIsCorruptionNotATornTail) {
  const auto dir = temp_dir();
  std::vector<std::uint64_t> boundary{0};
  crypto::Digest after_two;
  {
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    crypto::Digest d;
    for (std::uint64_t i = 0; i < 5; ++i) {
      const auto bd = digest_of(static_cast<std::uint8_t>(i));
      ASSERT_TRUE(store.append(i + 1, 0, bd, 1, frame_of(1, 64), 0));
      d = store::fold_exec_digest(d, bd);
      boundary.push_back(store.wal_bytes());
      if (i == 1) after_two = d;
    }
  }
  // Flip one payload bit inside record 2 (a COMPLETE record: corruption).
  auto wal = read_file(dir + "/wal.log");
  wal[boundary[2] + store::kRecordHeaderBytes + 10] ^= 0x01;
  write_file(dir + "/wal.log", wal);

  {
    ReplicaStore store(options(dir));
    const auto rec = store.open(RecoverMode::kStrict);
    EXPECT_FALSE(rec.ok());
    EXPECT_EQ(rec.status, RecoveryResult::Status::kCorrupt);
    EXPECT_NE(rec.detail.find("--recover=truncate"), std::string::npos) << rec.detail;
    EXPECT_FALSE(store.is_open());
  }
  {
    ReplicaStore store(options(dir));
    const auto rec = store.open(RecoverMode::kTruncate);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_EQ(store.exec_digest(), after_two);
    EXPECT_GT(rec.corrupt_dropped, 0u);
    // The repaired store accepts new appends and reopens cleanly.
    ASSERT_TRUE(store.append(10, 0, digest_of(0xEE), 1, frame_of(2, 16), 0));
  }
  ReplicaStore store(options(dir));
  ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
  EXPECT_EQ(store.entries(), 3u);
}

TEST(Store, ChainMismatchWithValidCrcIsCorruption) {
  const auto dir = temp_dir();
  {
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    append_entries(store, 3, 1, crypto::Digest{});
  }
  // Craft a record whose CRC is fine but whose post_digest does not extend
  // the chain — a forged or cross-wired entry, not random bit rot.
  store::WalEntry evil;
  evil.index = 3;
  evil.seq = 9;
  evil.ordinal = 0;
  evil.requests = 1;
  evil.block_digest = digest_of(0xAA);
  evil.post_digest = digest_of(0xBB);  // not fold(chain, block_digest)
  evil.frame = frame_of(3, 32);
  util::ByteWriter w;
  store::encode_entry(w, evil);
  const auto record = store::frame_record(w.bytes());
  auto wal = read_file(dir + "/wal.log");
  wal.insert(wal.end(), record.begin(), record.end());
  write_file(dir + "/wal.log", wal);

  ReplicaStore strict(options(dir));
  const auto rec = strict.open(RecoverMode::kStrict);
  EXPECT_EQ(rec.status, RecoveryResult::Status::kCorrupt);
  EXPECT_NE(rec.detail.find("chain mismatch"), std::string::npos) << rec.detail;

  ReplicaStore repair(options(dir));
  ASSERT_TRUE(repair.open(RecoverMode::kTruncate).ok());
  EXPECT_EQ(repair.entries(), 3u);
}

TEST(Store, IndexDiscontinuityIsCorruption) {
  const auto dir = temp_dir();
  crypto::Digest chain;
  {
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    chain = append_entries(store, 2, 1, crypto::Digest{});
  }
  store::WalEntry skip;
  skip.index = 5;  // should be 2
  skip.seq = 3;
  skip.block_digest = digest_of(0x11);
  skip.post_digest = store::fold_exec_digest(chain, skip.block_digest);
  skip.frame = frame_of(4, 8);
  util::ByteWriter w;
  store::encode_entry(w, skip);
  const auto record = store::frame_record(w.bytes());
  auto wal = read_file(dir + "/wal.log");
  wal.insert(wal.end(), record.begin(), record.end());
  write_file(dir + "/wal.log", wal);

  ReplicaStore store(options(dir));
  const auto rec = store.open(RecoverMode::kStrict);
  EXPECT_EQ(rec.status, RecoveryResult::Status::kCorrupt);
  EXPECT_NE(rec.detail.find("index discontinuity"), std::string::npos) << rec.detail;
}

TEST(Store, EnospcRollsBackAndRecovers) {
  const auto dir = temp_dir();
  FaultIo io;
  ReplicaStore store(options(dir, &io));
  ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
  const auto chain = append_entries(store, 2, 1, crypto::Digest{});
  const auto size_before = store.wal_bytes();

  // The disk fills mid-record: a short write followed by ENOSPC.
  io.append_byte_budget = 10;
  std::string err;
  EXPECT_FALSE(store.append(7, 0, digest_of(0x33), 1, frame_of(5, 128), 0, &err));
  EXPECT_NE(err.find("append"), std::string::npos) << err;
  EXPECT_EQ(store.entries(), 2u) << "failed append must not change state";
  EXPECT_EQ(store.exec_digest(), chain);
  EXPECT_EQ(store.wal_bytes(), size_before);
  EXPECT_EQ(store.stats().append_errors, 1u);
  EXPECT_EQ(read_file(dir + "/wal.log").size(), size_before) << "file rolled back";

  // Space returns: the next append lands with a contiguous index.
  io.append_byte_budget = -1;
  ASSERT_TRUE(store.append(7, 0, digest_of(0x33), 1, frame_of(5, 128), 0));
  std::vector<store::WalEntry> out;
  ASSERT_TRUE(store.read_entries(2, 3, out));
  EXPECT_EQ(out[0].index, 2u);

  ReplicaStore reopened(options(dir));
  ASSERT_TRUE(reopened.open(RecoverMode::kStrict).ok());
  EXPECT_EQ(reopened.entries(), 3u);
  EXPECT_EQ(reopened.exec_digest(), store.exec_digest());
}

TEST(Store, ShortWritesAreRetriedToCompletion) {
  const auto dir = temp_dir();
  FaultIo io;
  ReplicaStore store(options(dir, &io));
  ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());

  io.short_append_next = 5;  // first write() returns 5 bytes; store must loop
  ASSERT_TRUE(store.append(1, 0, digest_of(0x44), 1, frame_of(6, 100), 0));
  EXPECT_EQ(store.entries(), 1u);

  ReplicaStore reopened(options(dir));
  const auto rec = reopened.open(RecoverMode::kStrict);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(reopened.entries(), 1u);
  EXPECT_EQ(rec.torn_bytes, 0u);
}

TEST(Store, FsyncPolicyCountingAndFailure) {
  {
    const auto dir = temp_dir();
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    append_entries(store, 3, 1, crypto::Digest{});
    EXPECT_EQ(store.stats().fsyncs, 3u) << "kAlways syncs every append";
  }
  {
    const auto dir = temp_dir();
    auto opts = options(dir);
    opts.fsync_policy = FsyncPolicy::kNever;
    ReplicaStore store(opts);
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    append_entries(store, 3, 1, crypto::Digest{});
    EXPECT_EQ(store.stats().fsyncs, 0u);
  }
  {
    const auto dir = temp_dir();
    auto opts = options(dir);
    opts.fsync_policy = FsyncPolicy::kInterval;
    opts.fsync_interval = 50 * sim::kMillisecond;
    ReplicaStore store(opts);
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    const auto bd = digest_of(1);
    ASSERT_TRUE(store.append(1, 0, bd, 1, frame_of(1, 8), 10 * sim::kMillisecond));
    ASSERT_TRUE(store.append(2, 0, bd, 1, frame_of(1, 8), 20 * sim::kMillisecond));
    ASSERT_TRUE(store.append(3, 0, bd, 1, frame_of(1, 8), 70 * sim::kMillisecond));
    EXPECT_EQ(store.stats().fsyncs, 1u) << "one interval elapsed";
    EXPECT_TRUE(store.flush()) << "interval sync cleared dirty: no-op";
    EXPECT_EQ(store.stats().fsyncs, 1u);
    ASSERT_TRUE(store.append(4, 0, bd, 1, frame_of(1, 8), 80 * sim::kMillisecond));
    EXPECT_EQ(store.stats().fsyncs, 1u) << "80ms - 70ms is inside the interval";
    EXPECT_TRUE(store.flush()) << "unsynced append outstanding: must sync";
    EXPECT_EQ(store.stats().fsyncs, 2u);
  }
  {
    const auto dir = temp_dir();
    FaultIo io;
    ReplicaStore store(options(dir, &io));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    io.fail_fsync = true;
    std::string err;
    EXPECT_FALSE(store.append(1, 0, digest_of(2), 1, frame_of(1, 8), 0, &err));
    EXPECT_NE(err.find("fsync"), std::string::npos) << err;
    EXPECT_EQ(store.entries(), 1u) << "the entry itself is written, just not durable";
    EXPECT_EQ(store.stats().fsync_errors, 1u);
  }
}

TEST(Store, SnapshotGenerationsGcAndRecovery) {
  const auto dir = temp_dir();
  crypto::Digest expect;
  {
    auto opts = options(dir);
    opts.snapshot_every = 4;
    opts.keep_snapshots = 2;
    ReplicaStore store(opts);
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    expect = append_entries(store, 13, 1, crypto::Digest{});
    EXPECT_EQ(store.stats().snapshots_written, 3u);  // at 4, 8, 12
    EXPECT_EQ(count_snapshots(dir), 2u) << "GC keeps the newest two";
  }
  auto opts = options(dir);
  opts.snapshot_every = 4;
  ReplicaStore store(opts);
  const auto rec = store.open(RecoverMode::kStrict);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.entries, 13u);
  EXPECT_EQ(rec.snapshot_index, 12u) << "replay resumed from the newest snapshot";
  EXPECT_EQ(store.exec_digest(), expect);
  // State transfer still reaches below the snapshot: full records survive.
  std::vector<store::WalEntry> out;
  ASSERT_TRUE(store.read_entries(0, 13, out));
  EXPECT_EQ(out.front().index, 0u);
}

TEST(Store, LyingSnapshotFallsBackToFullReplay) {
  const auto dir = temp_dir();
  crypto::Digest expect;
  std::string snap_name;
  {
    auto opts = options(dir);
    opts.snapshot_every = 4;
    ReplicaStore store(opts);
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    expect = append_entries(store, 6, 1, crypto::Digest{});
  }
  for (const auto& name : store::StoreIo::system().list_dir(dir)) {
    if (name.find(".snap") != std::string::npos) snap_name = name;
  }
  ASSERT_FALSE(snap_name.empty());

  // Tamper 1: random damage — the snapshot stops parsing and is skipped.
  const auto snap_path = dir + "/" + snap_name;
  const auto original = read_file(snap_path);
  auto bent = original;
  bent[bent.size() / 2] ^= 0xFF;
  write_file(snap_path, bent);
  {
    ReplicaStore store(options(dir));
    const auto rec = store.open(RecoverMode::kStrict);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.snapshot_index, 0u) << "unreadable snapshot must be skipped";
    EXPECT_EQ(store.exec_digest(), expect);
  }

  // Tamper 2: a well-formed snapshot that LIES about the digest. The chain
  // check on the first suffix record exposes it; open() retries from genesis
  // and recovers the true state.
  {
    const auto payload = store::scan_record(original, 0);
    ASSERT_EQ(payload.status, store::RecordScan::Status::kRecord);
    util::Bytes lied(payload.payload.begin(), payload.payload.end());
    lied[lied.size() - 1] ^= 0xFF;  // last exec_digest byte
    write_file(snap_path, store::frame_record(lied));
  }
  ReplicaStore store(options(dir));
  const auto rec = store.open(RecoverMode::kStrict);
  ASSERT_TRUE(rec.ok()) << rec.detail;
  EXPECT_EQ(rec.snapshot_index, 0u) << "lying snapshot abandoned, full replay";
  EXPECT_EQ(store.entries(), 6u);
  EXPECT_EQ(store.exec_digest(), expect);
}

TEST(Store, StraySnapTmpAndForeignFilesAreIgnored) {
  const auto dir = temp_dir();
  crypto::Digest expect;
  {
    ReplicaStore store(options(dir));
    ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());
    expect = append_entries(store, 3, 1, crypto::Digest{});
  }
  // A crash between snapshot write and rename leaves snap.tmp behind; other
  // stray files must not confuse recovery either.
  write_file(dir + "/snap.tmp", frame_of(0xDD, 100));
  write_file(dir + "/snap-1.snap", frame_of(0xDD, 30));  // wrong name shape
  write_file(dir + "/notes.txt", frame_of(0x20, 10));

  ReplicaStore store(options(dir));
  const auto rec = store.open(RecoverMode::kStrict);
  ASSERT_TRUE(rec.ok()) << rec.detail;
  EXPECT_EQ(store.entries(), 3u);
  EXPECT_EQ(store.exec_digest(), expect);
}

TEST(Store, SnapshotRenameFailureLeavesStoreHealthy) {
  const auto dir = temp_dir();
  FaultIo io;
  auto opts = options(dir, &io);
  opts.snapshot_every = 2;
  ReplicaStore store(opts);
  ASSERT_TRUE(store.open(RecoverMode::kStrict).ok());

  io.fail_rename = true;
  const auto expect = append_entries(store, 4, 1, crypto::Digest{});
  EXPECT_EQ(store.stats().snapshots_written, 0u);
  EXPECT_EQ(store.stats().snapshot_errors, 2u);
  EXPECT_EQ(count_snapshots(dir), 0u);
  EXPECT_EQ(store.exec_digest(), expect) << "snapshot failure never corrupts state";

  ReplicaStore reopened(options(dir));
  ASSERT_TRUE(reopened.open(RecoverMode::kStrict).ok());
  EXPECT_EQ(reopened.entries(), 4u);
  EXPECT_EQ(reopened.exec_digest(), expect);
}

// ---------------------------------------------------------------------------
// StateSync under a byzantine serving peer, driven message by message.
// ---------------------------------------------------------------------------

namespace {

/// One node's store + StateSync with outbound payloads captured for manual
/// delivery (timers are no-ops; the test drives every step by hand).
struct SyncNode {
  std::string dir = temp_dir();
  std::unique_ptr<ReplicaStore> store;
  std::unique_ptr<store::StateSync> sync;
  std::vector<std::pair<sim::NodeId, sim::PayloadPtr>> out;

  SyncNode(sim::NodeId id, std::uint32_t n, std::uint32_t f) {
    store = std::make_unique<ReplicaStore>(options(dir));
    EXPECT_TRUE(store->open(RecoverMode::kStrict).ok());
    sync = std::make_unique<store::StateSync>(id, n, f, store.get(),
                                              store::StateSyncOptions{});
    sync->set_send([this](sim::NodeId to, sim::PayloadPtr p) {
      out.emplace_back(to, std::move(p));
    });
    sync->set_timer_hooks([](std::uint64_t, sim::SimTime) {}, [](std::uint64_t) {});
  }

  std::vector<std::pair<sim::NodeId, sim::PayloadPtr>> drain() {
    return std::exchange(out, {});
  }
};

/// Drives node 0 (empty store) through probe -> offer -> pull against honest
/// servers 1 and 2, injecting `attack(honest_chunk_template)` payloads from
/// byzantine peer 3 BEFORE any honest chunk is delivered. Returns the client.
std::unique_ptr<SyncNode> run_sync_under_attack(
    const std::function<std::vector<sim::PayloadPtr>(const proto::StateChunkMsg&)>&
        attack,
    crypto::Digest* expect_out) {
  constexpr std::uint32_t n = 4;
  constexpr std::uint32_t f = 1;
  auto client = std::make_unique<SyncNode>(0, n, f);
  std::vector<std::unique_ptr<SyncNode>> servers;
  for (sim::NodeId id = 1; id <= 3; ++id) {
    servers.push_back(std::make_unique<SyncNode>(id, n, f));
    *expect_out = append_entries(*servers.back()->store, 6, 1, crypto::Digest{});
  }
  auto* s1 = servers[0].get();
  auto* s2 = servers[1].get();

  client->sync->start(0);
  auto probes = client->drain();
  EXPECT_EQ(probes.size(), 3u);
  // Peer 3 never answers honestly; servers 1 and 2 offer, which is enough
  // (n-1-f = 2) for the client to decide and broadcast a pull.
  for (auto& [to, p] : probes) {
    if (to == 1) s1->sync->on_payload(0, p, 0);
    if (to == 2) s2->sync->on_payload(0, p, 0);
  }
  for (auto& [to, p] : s1->drain()) client->sync->on_payload(1, p, 0);
  for (auto& [to, p] : s2->drain()) client->sync->on_payload(2, p, 0);
  auto pulls = client->drain();
  EXPECT_EQ(pulls.size(), 3u) << "pull must broadcast to every peer";
  for (auto& [to, p] : pulls) {
    if (to == 1) s1->sync->on_payload(0, p, 0);
    if (to == 2) s2->sync->on_payload(0, p, 0);
  }
  auto c1 = s1->drain();
  auto c2 = s2->drain();
  EXPECT_EQ(c1.size(), 1u);
  EXPECT_EQ(c2.size(), 1u);
  const auto* honest =
      dynamic_cast<const proto::StateChunkMsg*>(c1.front().second.get());
  EXPECT_NE(honest, nullptr);

  // The byzantine peer races its forgeries in before any honest answer.
  for (auto& forged : attack(*honest)) {
    client->sync->on_payload(3, forged, 0);
  }
  EXPECT_FALSE(client->sync->live());

  // Honest chunks land last; the round must still complete, after which the
  // client re-probes and the matching offers take it live.
  client->sync->on_payload(1, c1.front().second, 0);
  client->sync->on_payload(2, c2.front().second, 0);
  auto reprobes = client->drain();
  for (auto& [to, p] : reprobes) {
    if (to == 1) s1->sync->on_payload(0, p, 0);
    if (to == 2) s2->sync->on_payload(0, p, 0);
  }
  for (auto& [to, p] : s1->drain()) client->sync->on_payload(1, p, 0);
  for (auto& [to, p] : s2->drain()) client->sync->on_payload(2, p, 0);
  return client;
}

}  // namespace

TEST(StateSyncByzantine, SpoofedShardIndicesCannotSquatHonestSlots) {
  // The attack REVIEW.md flagged: a byzantine peer answers fastest and squats
  // the honest servers' shard indices with garbage under the honest group
  // key. With first-write-wins and no sender check the honest shards arriving
  // later would be discarded, every decodable subset would contain garbage,
  // and the pull would stall until the round timer forever. Chunks claiming
  // an index other than the sender's id must be rejected outright.
  crypto::Digest expect;
  auto client = run_sync_under_attack(
      [](const proto::StateChunkMsg& honest) {
        std::vector<sim::PayloadPtr> forged;
        for (std::uint32_t idx = 1; idx <= 2; ++idx) {
          auto m = std::make_shared<proto::StateChunkMsg>(honest);
          m->chunk_index = idx;  // someone else's shard slot
          for (auto& b : m->chunk) b ^= 0xA5;
          forged.push_back(std::move(m));
        }
        return forged;
      },
      &expect);

  EXPECT_TRUE(client->sync->live());
  EXPECT_EQ(client->sync->executed_blocks(), 6u);
  EXPECT_EQ(client->sync->exec_digest(), expect);
  EXPECT_EQ(client->store->entries(), 6u);
  const auto& st = client->sync->stats();
  EXPECT_EQ(st.rounds_completed, 1u);
  EXPECT_EQ(st.entries_transferred, 6u);
  // The forgeries never enter a group, so the honest pair decodes first try.
  EXPECT_EQ(st.verify_failures, 0u);
}

TEST(StateSyncByzantine, GarbledOwnShardWastesOnlyItsOwnSlot) {
  // Sim-level twin of the wire `garbage-shares` mode: the byzantine peer
  // serves a garbled shard under its OWN index and the honest group key. It
  // occupies one slot, costs exactly one failed decode attempt, and the
  // untainted honest subset still completes the round.
  crypto::Digest expect;
  auto client = run_sync_under_attack(
      [](const proto::StateChunkMsg& honest) {
        auto m = std::make_shared<proto::StateChunkMsg>(honest);
        m->chunk_index = 3;
        for (auto& b : m->chunk) b ^= 0xA5;
        return std::vector<sim::PayloadPtr>{std::move(m)};
      },
      &expect);

  EXPECT_TRUE(client->sync->live());
  EXPECT_EQ(client->sync->executed_blocks(), 6u);
  EXPECT_EQ(client->sync->exec_digest(), expect);
  const auto& st = client->sync->stats();
  EXPECT_EQ(st.rounds_completed, 1u);
  // One tainted subset ({garbage, first honest shard}) fails before the
  // honest pair verifies; the incremental search never retries it.
  EXPECT_EQ(st.verify_failures, 1u);
}

TEST(StateSyncByzantine, ForgedGroupFloodIsBoundedAndHarmless) {
  // A byzantine peer minting a distinct (until, digest) group per message is
  // capped per sender, and none of it blocks the honest group from forming.
  crypto::Digest expect;
  auto client = run_sync_under_attack(
      [](const proto::StateChunkMsg& honest) {
        std::vector<sim::PayloadPtr> forged;
        for (std::uint8_t i = 0; i < 16; ++i) {
          auto m = std::make_shared<proto::StateChunkMsg>(honest);
          m->chunk_index = 3;
          m->exec_digest = digest_of(i);  // 16 distinct forged group keys
          for (auto& b : m->chunk) b ^= 0xA5;
          forged.push_back(std::move(m));
        }
        return forged;
      },
      &expect);

  EXPECT_TRUE(client->sync->live());
  EXPECT_EQ(client->sync->executed_blocks(), 6u);
  EXPECT_EQ(client->sync->exec_digest(), expect);
  // Single-chunk forged groups never reach f+1 shards, so no decode was even
  // attempted against them.
  EXPECT_EQ(client->sync->stats().verify_failures, 0u);
}
