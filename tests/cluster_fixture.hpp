// Shared test fixture: builds a small Leopard cluster (sans-I/O cores behind
// SimEnv adapters) with per-replica Byzantine specs and direct access to
// replicas/clients for invariant checks. Optionally records each replica's
// full event/action trace for determinism and replay tests.
#pragma once

#include <memory>
#include <vector>

#include "core/client.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/replica.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocol/factory.hpp"
#include "protocol/replay.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace leopard::test {

struct ClusterOptions {
  std::uint32_t n = 4;
  core::LeopardConfig protocol;                 // n is overwritten from `n`
  std::vector<core::ByzantineSpec> byzantine;   // per-replica; missing = honest
  double client_rate_per_replica = 2000;        // req/s to each non-leader replica
  std::uint32_t client_backlog = 0;
  std::uint32_t client_submit_copies = 1;
  sim::SimTime client_resubmit_timeout = 0;
  std::uint32_t payload_size = 64;
  bool real_payload = false;
  std::uint64_t seed = 7;
  bool record_traces = false;  // capture per-replica event/action traces
};

class LeopardCluster {
 public:
  explicit LeopardCluster(ClusterOptions opts)
      : opts_(std::move(opts)),
        net_(sim_, make_net_config()),
        ts_(opts_.n, 2 * ((opts_.n - 1) / 3) + 1, opts_.seed) {
    opts_.protocol.n = opts_.n;
    opts_.protocol.payload_size = opts_.payload_size;
    if (opts_.record_traces) traces_.resize(opts_.n);

    const sim::NodeId leader = 1 % opts_.n;
    for (std::uint32_t id = 0; id < opts_.n; ++id) {
      protocol::ProtocolSpec spec;
      spec.config = opts_.protocol;
      if (id < opts_.byzantine.size()) spec.byzantine = opts_.byzantine[id];
      replicas_.push_back(protocol::make_sim_replica(net_, metrics_, spec, ts_, id));
      if (opts_.record_traces) replicas_.back().env->set_recorder(&traces_[id]);
    }
    for (std::uint32_t id = 0; id < opts_.n; ++id) {
      if (id == leader) continue;
      core::ClientConfig ccfg;
      ccfg.request_rate = opts_.client_rate_per_replica;
      ccfg.payload_size = opts_.payload_size;
      ccfg.real_payload = opts_.real_payload;
      ccfg.resubmit_timeout = opts_.client_resubmit_timeout;
      ccfg.initial_backlog = opts_.client_backlog;
      ccfg.submit_copies = opts_.client_submit_copies;
      ccfg.burst = 1;
      clients_.push_back(protocol::make_sim_client(net_, metrics_, ccfg, id, opts_.n, leader,
                                                   opts_.seed + 100 + id));
    }
  }

  void run_for(double seconds) {
    if (!started_) {
      net_.start_all();
      started_ = true;
    }
    sim_.run_until(sim_.now() + sim::from_seconds(seconds));
  }

  [[nodiscard]] core::LeopardReplica& replica(std::uint32_t id) {
    return replicas_[id].as<core::LeopardReplica>();
  }
  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }
  [[nodiscard]] protocol::SimEnv& env(std::uint32_t id) { return *replicas_[id].env; }
  [[nodiscard]] const protocol::Trace& trace(std::uint32_t id) const {
    util::expects(id < traces_.size(), "trace(): cluster built without record_traces");
    return traces_[id];
  }
  [[nodiscard]] core::LeopardClient& client(std::size_t i) { return *clients_[i].core; }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] core::ProtocolMetrics& metrics() { return metrics_; }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const crypto::ThresholdScheme& scheme() const { return ts_; }
  [[nodiscard]] const core::LeopardConfig& protocol_config() const { return opts_.protocol; }

  /// Theorem 1 invariant: all honest replicas' confirmed logs agree
  /// position-wise (honest = not in `byzantine_ids`).
  [[nodiscard]] bool logs_consistent(const std::vector<std::uint32_t>& byzantine_ids = {}) {
    for (std::uint32_t a = 0; a < opts_.n; ++a) {
      if (is_in(a, byzantine_ids)) continue;
      const auto& log_a = replica(a).confirmed_log();
      for (std::uint32_t b = a + 1; b < opts_.n; ++b) {
        if (is_in(b, byzantine_ids)) continue;
        const auto& log_b = replica(b).confirmed_log();
        for (const auto& [sn, digest] : log_a) {
          const auto it = log_b.find(sn);
          if (it != log_b.end() && it->second != digest) return false;
        }
      }
    }
    return true;
  }

  /// Smallest executed_through() among honest replicas.
  [[nodiscard]] proto::SeqNum min_executed(const std::vector<std::uint32_t>& byzantine_ids = {}) {
    proto::SeqNum lo = std::numeric_limits<proto::SeqNum>::max();
    for (std::uint32_t id = 0; id < opts_.n; ++id) {
      if (is_in(id, byzantine_ids)) continue;
      lo = std::min(lo, replica(id).executed_through());
    }
    return lo;
  }

 private:
  static bool is_in(std::uint32_t id, const std::vector<std::uint32_t>& ids) {
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  }

  static sim::NetworkConfig make_net_config() {
    sim::NetworkConfig cfg;
    cfg.propagation_delay = 100 * sim::kMicrosecond;  // tight for fast tests
    return cfg;
  }

  ClusterOptions opts_;
  sim::Simulator sim_;
  sim::Network net_;
  crypto::ThresholdScheme ts_;
  core::ProtocolMetrics metrics_;
  std::vector<protocol::Trace> traces_;
  std::vector<protocol::SimReplica> replicas_;
  std::vector<protocol::SimClient> clients_;
  bool started_ = false;
};

}  // namespace leopard::test
