// EventQueue stress and property tests for the slab/generation-handle
// design: interleaved schedule/cancel/pop against a reference model,
// deterministic tie-breaking, slot-recycling (ABA) safety, and a 1M-event
// soak. Complements the behavioural tests in sim_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace ls = leopard::sim;
namespace lu = leopard::util;

TEST(EventQueueStress, MillionEventsPopInTimeThenInsertionOrder) {
  ls::EventQueue q;
  constexpr std::size_t kEvents = 1'000'000;
  // Many ties (time buckets) so both orderings are exercised at scale.
  lu::Rng rng(42);
  std::vector<ls::SimTime> times(kEvents);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < kEvents; ++i) {
    times[i] = static_cast<ls::SimTime>(rng.uniform(10000));
    q.schedule(times[i], [&fired] { ++fired; });
  }
  EXPECT_EQ(q.size(), kEvents);

  ls::SimTime prev_at = -1;
  std::uint64_t pops = 0;
  while (auto e = q.pop_next(20000)) {
    EXPECT_GE(e->first, prev_at);
    prev_at = e->first;
    e->second();
    ++pops;
  }
  EXPECT_EQ(pops, kEvents);
  EXPECT_EQ(fired, kEvents);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, TieBreakingIsInsertionOrderAcrossSlotReuse) {
  // Slots recycle between rounds; the global sequence counter must still
  // order same-time events by schedule() call order.
  ls::EventQueue q;
  std::vector<int> order;
  for (int round = 0; round < 3; ++round) {
    order.clear();
    for (int i = 0; i < 100; ++i) {
      q.schedule(7, [&order, i] { order.push_back(i); });
    }
    while (q.run_next(100)) {
    }
    std::vector<int> expected(100);
    for (int i = 0; i < 100; ++i) expected[i] = i;
    EXPECT_EQ(order, expected) << "round " << round;
  }
}

TEST(EventQueueStress, InterleavedScheduleCancelPopMatchesModel) {
  // Reference model: multimap keyed by (time, seq) mirroring the queue's
  // contract. Random interleaving of schedule/cancel/pop must agree exactly.
  ls::EventQueue q;
  struct ModelEvent {
    std::uint64_t id;
    bool cancelled = false;
  };
  std::map<std::pair<ls::SimTime, std::uint64_t>, ModelEvent> model;
  std::vector<ls::EventHandle> handles;
  std::vector<std::pair<ls::SimTime, std::uint64_t>> handle_keys;

  lu::Rng rng(99);
  std::uint64_t next_id = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> fired;
  std::vector<std::uint64_t> expected_fired;

  for (int step = 0; step < 200000; ++step) {
    const auto action = rng.uniform(100);
    if (action < 55) {
      // Schedule.
      const auto at = static_cast<ls::SimTime>(rng.uniform(1000));
      const std::uint64_t id = next_id++;
      handles.push_back(q.schedule(at, [&fired, id] { fired.push_back(id); }));
      handle_keys.emplace_back(at, seq);
      model.emplace(std::make_pair(at, seq++), ModelEvent{id});
    } else if (action < 75 && !handles.empty()) {
      // Cancel a random outstanding handle (possibly already fired/cancelled).
      const std::size_t pick = rng.uniform(handles.size());
      handles[pick].cancel();
      const auto it = model.find(handle_keys[pick]);
      if (it != model.end()) it->second.cancelled = true;
    } else {
      // Pop the earliest live event with no limit.
      auto popped = q.pop_next(2000);
      // Advance the model to its earliest uncancelled entry.
      while (!model.empty() && model.begin()->second.cancelled) model.erase(model.begin());
      if (model.empty()) {
        EXPECT_FALSE(popped.has_value()) << "step " << step;
      } else {
        ASSERT_TRUE(popped.has_value()) << "step " << step;
        EXPECT_EQ(popped->first, model.begin()->first.first) << "step " << step;
        expected_fired.push_back(model.begin()->second.id);
        model.erase(model.begin());
        auto cb = std::move(popped->second);
        cb();
      }
    }
  }
  EXPECT_EQ(fired, expected_fired);
  EXPECT_EQ(q.size(), [&] {
    std::size_t live = 0;
    for (const auto& [key, ev] : model) live += ev.cancelled ? 0 : 1;
    return live;
  }());
}

TEST(EventQueueStress, StaleHandleCannotCancelRecycledSlot) {
  // ABA safety: a handle kept past its event's cancellation must not affect a
  // newer event that recycled the same slab slot.
  ls::EventQueue q;
  bool first_ran = false;
  auto stale = q.schedule(10, [&first_ran] { first_ran = true; });
  stale.cancel();
  EXPECT_TRUE(q.empty());

  bool second_ran = false;
  auto fresh = q.schedule(20, [&second_ran] { second_ran = true; });
  stale.cancel();  // stale generation: must be a no-op
  EXPECT_FALSE(q.empty());
  while (q.run_next(100)) {
  }
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);

  fresh.cancel();  // after firing: also a no-op
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, ConstEmptyAndNextTimeSeeThroughCancellations) {
  ls::EventQueue q;
  std::vector<ls::EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(q.schedule(100 + i, [] {}));
  }
  // Cancel the earliest few; const readers must report the first live event.
  for (int i = 0; i < 5; ++i) handles[i].cancel();
  const ls::EventQueue& cq = q;
  EXPECT_FALSE(cq.empty());
  ASSERT_TRUE(cq.next_time().has_value());
  EXPECT_EQ(*cq.next_time(), 105);

  for (int i = 5; i < 10; ++i) handles[i].cancel();
  EXPECT_TRUE(cq.empty());
  EXPECT_FALSE(cq.next_time().has_value());
}

TEST(EventQueueStress, MassCancellationReclaimsHeapDeterministically) {
  // Schedule far-future timers and cancel nearly all of them, repeatedly —
  // the pattern of view-change/retrieval timers. The queue must keep working
  // and still fire the survivors in order (compaction must not lose or
  // reorder anything).
  ls::EventQueue q;
  std::vector<int> fired;
  for (int round = 0; round < 50; ++round) {
    std::vector<ls::EventHandle> handles;
    for (int i = 0; i < 1000; ++i) {
      const int id = round * 1000 + i;
      handles.push_back(q.schedule(1'000'000 + id, [&fired, id] { fired.push_back(id); }));
    }
    for (int i = 0; i < 1000; ++i) {
      if (i % 100 != 0) handles[i].cancel();  // keep every 100th
    }
  }
  EXPECT_EQ(q.size(), 50u * 10u);
  std::vector<int> expected;
  while (auto e = q.run_next(10'000'000)) {
  }
  ASSERT_EQ(fired.size(), 500u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(EventQueueStress, LargeCallbacksFallBackToHeapStorage) {
  // Captures bigger than the inline buffer must still work (heap fallback).
  ls::EventQueue q;
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineCapacity
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  q.schedule(1, [big, &sum] {
    for (const auto v : big) sum += v;
  });
  while (q.run_next(10)) {
  }
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < big.size(); ++i) expected += i * 3 + 1;
  EXPECT_EQ(sum, expected);
}

TEST(EventQueueStress, CallbacksOwningResourcesAreDestroyedOnCancel) {
  // Cancelling must release the callback's resources immediately (the slab
  // reclaims the slot); shared_ptr use-count makes that observable.
  ls::EventQueue q;
  auto token = std::make_shared<int>(7);
  auto h = q.schedule(50, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  h.cancel();
  EXPECT_EQ(token.use_count(), 1);
}
