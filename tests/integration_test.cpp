// Cross-module integration: parameterized fault-injection sweeps asserting
// the paper's safety (Theorem 1) and liveness (Theorem 2) properties across
// cluster sizes and attack combinations, plus partial-synchrony behaviour.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster_fixture.hpp"

using namespace leopard;
using test::ClusterOptions;
using test::LeopardCluster;

namespace {
ClusterOptions base_opts(std::uint32_t n) {
  ClusterOptions o;
  o.n = n;
  o.protocol.datablock_requests = 50;
  o.protocol.bftblock_links = 2;
  o.protocol.datablock_max_wait = 100 * sim::kMillisecond;
  o.protocol.proposal_max_wait = 50 * sim::kMillisecond;
  o.protocol.view_timeout = 2 * sim::kSecond;
  o.client_rate_per_replica = 8000.0 / (n - 1);
  o.client_resubmit_timeout = 2 * sim::kSecond;
  return o;
}
}  // namespace

// --- Fault matrix sweep -----------------------------------------------------
// Scenario x cluster size: every combination must preserve safety, and all
// except "crashed leader mid-run" must also keep confirming throughout.
enum class Fault {
  kNone,
  kSelective,          // selective dissemination by f replicas
  kSelectiveNoHelp,    // selective + refuse retrieval queries
  kWithholdVotes,      // f silent voters
  kDropForeign,        // f replicas ignore others' datablocks
  kCrashNonLeaders,    // f replicas crash outright mid-run
};

class FaultSweep : public ::testing::TestWithParam<std::tuple<std::uint32_t, Fault>> {};

TEST_P(FaultSweep, SafetyAndLivenessHold) {
  const auto [n, fault] = GetParam();
  auto opts = base_opts(n);
  const std::uint32_t f = (n - 1) / 3;

  std::vector<std::uint32_t> byz_ids;
  opts.byzantine.resize(n);
  // Apply the fault to the LAST f replicas (never 0 = observer, 1 = leader).
  for (std::uint32_t i = n - f; i < n; ++i) {
    byz_ids.push_back(i);
    auto& spec = opts.byzantine[i];
    switch (fault) {
      case Fault::kNone:
        byz_ids.pop_back();
        break;
      case Fault::kSelective:
        spec.selective_recipients = 2 * f;
        break;
      case Fault::kSelectiveNoHelp:
        spec.selective_recipients = 2 * f;
        spec.ignore_queries = true;
        break;
      case Fault::kWithholdVotes:
        spec.withhold_votes = true;
        break;
      case Fault::kDropForeign:
        spec.drop_foreign_datablocks = true;
        spec.vote_blindly = true;
        break;
      case Fault::kCrashNonLeaders:
        spec.crash_at = sim::from_seconds(1.0);
        break;
    }
  }

  LeopardCluster cluster(opts);
  cluster.run_for(5.0);

  EXPECT_TRUE(cluster.logs_consistent(byz_ids)) << "n=" << n;
  EXPECT_FALSE(cluster.metrics().safety_violation);
  EXPECT_GT(cluster.metrics().executed_requests, 500u) << "n=" << n;
  // Liveness: confirmations continue in the second half of the run.
  const auto mid = cluster.metrics().executed_requests;
  cluster.run_for(3.0);
  EXPECT_GT(cluster.metrics().executed_requests, mid) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, FaultSweep,
    ::testing::Combine(::testing::Values(4u, 7u, 13u),
                       ::testing::Values(Fault::kNone, Fault::kSelective,
                                         Fault::kSelectiveNoHelp, Fault::kWithholdVotes,
                                         Fault::kDropForeign, Fault::kCrashNonLeaders)));

// --- Combined worst case -----------------------------------------------------

TEST(Integration, SelectiveAttackersPlusLeaderCrash) {
  auto opts = base_opts(7);
  opts.byzantine.resize(7);
  opts.byzantine[5].selective_recipients = 4;
  opts.byzantine[5].ignore_queries = true;
  opts.byzantine[1].crash_at = sim::from_seconds(2.0);  // leader dies too (f = 2 total)
  LeopardCluster cluster(opts);
  cluster.run_for(12.0);

  EXPECT_TRUE(cluster.logs_consistent({1, 5}));
  EXPECT_FALSE(cluster.metrics().safety_violation);
  EXPECT_GE(cluster.metrics().view_changes_completed, 1u);
  const auto mid = cluster.metrics().executed_requests;
  cluster.run_for(4.0);
  EXPECT_GT(cluster.metrics().executed_requests, mid)
      << "liveness must be restored under the new leader";
}

TEST(Integration, CascadedLeaderCrashes) {
  // Leaders of views 1 and 2 both fail: the protocol must walk to view 3.
  auto opts = base_opts(7);
  opts.byzantine.resize(7);
  opts.byzantine[1].crash_at = sim::from_seconds(1.0);
  opts.byzantine[2].crash_at = sim::from_seconds(1.0);
  LeopardCluster cluster(opts);
  cluster.run_for(16.0);

  EXPECT_GE(cluster.replica(0).view(), 3u);
  EXPECT_TRUE(cluster.logs_consistent({1, 2}));
  const auto mid = cluster.metrics().executed_requests;
  cluster.run_for(4.0);
  EXPECT_GT(cluster.metrics().executed_requests, mid);
}

TEST(Integration, StateTransferHealsLaggards) {
  // A replica that loses the retrieval race must catch up via the stable
  // checkpoint (state transfer) rather than stalling the cluster.
  auto opts = base_opts(7);
  opts.protocol.max_parallel_instances = 8;  // frequent checkpoints
  opts.byzantine.resize(7);
  opts.byzantine[6].selective_recipients = 4;
  LeopardCluster cluster(opts);
  cluster.run_for(8.0);

  // All honest replicas within one checkpoint window of each other.
  proto::SeqNum lo = std::numeric_limits<proto::SeqNum>::max();
  proto::SeqNum hi = 0;
  for (std::uint32_t id = 0; id < 7; ++id) {
    if (id == 6) continue;
    lo = std::min(lo, cluster.replica(id).executed_through());
    hi = std::max(hi, cluster.replica(id).executed_through());
  }
  EXPECT_GT(lo, 0u);
  EXPECT_LE(hi - lo, 2u * opts.protocol.max_parallel_instances);
}

// --- Partial synchrony --------------------------------------------------------

TEST(Integration, ConfirmsAfterGstDespitePreGstChaos) {
  auto opts = base_opts(4);
  LeopardCluster cluster(opts);
  // Reconfigure the network: heavy adversarial delay before GST at 2 s.
  // (The fixture's network is already built; emulate pre-GST chaos with a
  // link filter dropping most traffic until t = 2 s.)
  std::uint64_t counter = 0;
  cluster.network().set_link_filter(
      [&cluster, &counter](sim::NodeId, sim::NodeId, const sim::Payload&) {
        if (cluster.simulator().now() >= 2 * sim::kSecond) return true;
        return (++counter % 4) == 0;  // deliver only a quarter of messages
      });
  cluster.run_for(8.0);

  EXPECT_GT(cluster.metrics().executed_requests, 500u);
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_FALSE(cluster.metrics().safety_violation);
}

TEST(Integration, IdleClusterStaysInViewOne) {
  auto opts = base_opts(4);
  opts.client_rate_per_replica = 0;  // no traffic at all
  LeopardCluster cluster(opts);
  cluster.run_for(10.0);
  // No pending work -> no spurious view changes, no confirmations.
  EXPECT_EQ(cluster.replica(0).view(), 1u);
  EXPECT_EQ(cluster.metrics().executed_requests, 0u);
  EXPECT_EQ(cluster.metrics().view_changes_completed, 0u);
}

TEST(Integration, ChecksumChainMatchesAcrossReplicasAtEqualHeight) {
  auto opts = base_opts(7);
  LeopardCluster cluster(opts);
  cluster.run_for(4.0);
  // Any two replicas with the same executed height share the state digest.
  for (std::uint32_t a = 0; a < 7; ++a) {
    for (std::uint32_t b = a + 1; b < 7; ++b) {
      if (cluster.replica(a).executed_through() == cluster.replica(b).executed_through()) {
        EXPECT_EQ(cluster.replica(a).state_digest().hex(),
                  cluster.replica(b).state_digest().hex())
            << a << " vs " << b;
      }
    }
  }
}
