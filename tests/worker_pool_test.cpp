// Worker-pool determinism and parity: the pool's static partition must cover
// ranges exactly, pool sizes {1,2,4,8} must produce byte-identical erasure
// encodes and Merkle roots against the serial path under every GF(256)
// kernel, n-lane hashing must be pool-size-invariant, and the dispatch
// machinery must survive a TSan-checked stress mix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace lc = leopard::crypto;
namespace le = leopard::erasure;
namespace lu = leopard::util;

namespace {

/// Restores the global pool to serial when a test exits.
class PoolGuard {
 public:
  ~PoolGuard() { lu::WorkerPool::global().resize(1); }
};

lu::Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  lu::Bytes out(size);
  lu::Rng rng(seed);
  rng.fill(out.data(), out.size());
  return out;
}

std::vector<le::Gf256::Kernel> all_gf_kernels() {
  std::vector<le::Gf256::Kernel> out;
  for (const auto k :
       {le::Gf256::Kernel::kScalarRef, le::Gf256::Kernel::kScalar64,
        le::Gf256::Kernel::kSsse3, le::Gf256::Kernel::kNeon, le::Gf256::Kernel::kAvx2}) {
    if (le::Gf256::kernel_available(k)) out.push_back(k);
  }
  return out;
}

}  // namespace

TEST(WorkerPoolPartition, ChunksAreDisjointAlignedAndCovering) {
  for (const std::size_t count : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                                  std::size_t{1000}, std::size_t{1u << 20}}) {
    for (const std::size_t align : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
      for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                      std::size_t{8}}) {
        std::size_t covered = 0;
        std::size_t prev_end = 0;
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const auto [b, e] = lu::WorkerPool::chunk_of(count, align, lanes, lane);
          ASSERT_LE(b, e);
          if (lane > 0) {
            EXPECT_EQ(b, prev_end);  // contiguous, in lane order
          }
          if (b < e && e < count) {
            EXPECT_EQ(e % align, 0u) << "interior boundary must be aligned";
          }
          covered += e - b;
          prev_end = e;
        }
        EXPECT_EQ(covered, count)
            << "count=" << count << " align=" << align << " lanes=" << lanes;
        EXPECT_EQ(prev_end, count);
      }
    }
  }
}

TEST(WorkerPool, RunsEveryElementExactlyOnce) {
  PoolGuard guard;
  auto& pool = lu::WorkerPool::global();
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    pool.resize(lanes);
    EXPECT_EQ(pool.lanes(), lanes);
    std::vector<std::atomic<int>> hits(10007);
    pool.for_ranges(hits.size(), 16, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " lanes=" << lanes;
    }
  }
}

TEST(WorkerPool, EncodeParityAcrossPoolSizesAndKernels) {
  PoolGuard guard;
  auto& pool = lu::WorkerPool::global();
  const auto prev_kernel = le::Gf256::active_kernel();
  // Shard width large enough to clear the parallel-dispatch threshold.
  const std::uint32_t k = 8, n = 24;
  const le::ReedSolomon rs(k, n);
  const auto msg = random_bytes(64 * 1024 * k - 4, 12345);

  for (const auto kernel : all_gf_kernels()) {
    le::Gf256::force_kernel(kernel);
    pool.resize(1);
    le::RsScratch serial_scratch;
    const auto serial = rs.encode_into(msg, serial_scratch);
    const lu::Bytes serial_bytes(serial.bytes().begin(), serial.bytes().end());
    const auto serial_root =
        lc::MerkleTree(lc::MerkleTree::hash_leaves(serial.bytes(), serial.width)).root();

    for (const std::size_t lanes : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      pool.resize(lanes);
      le::RsScratch scratch;
      const auto enc = rs.encode_into(msg, scratch);
      ASSERT_EQ(enc.width, serial.width);
      ASSERT_EQ(enc.count, serial.count);
      EXPECT_TRUE(std::memcmp(enc.base, serial_bytes.data(), serial_bytes.size()) == 0)
          << "kernel=" << le::Gf256::kernel_name(kernel) << " lanes=" << lanes;
      const auto root =
          lc::MerkleTree(lc::MerkleTree::hash_leaves(enc.bytes(), enc.width)).root();
      EXPECT_EQ(root, serial_root)
          << "kernel=" << le::Gf256::kernel_name(kernel) << " lanes=" << lanes;
    }
  }
  le::Gf256::force_kernel(prev_kernel);
}

TEST(WorkerPool, HashManyParityAcrossPoolSizes) {
  PoolGuard guard;
  auto& pool = lu::WorkerPool::global();
  // Large enough to clear the hash_many fan-out threshold at every size.
  const std::size_t len = 1024, count = 512;
  const auto arena = random_bytes(len * count, 777);
  const std::uint8_t tag = 0x00;

  pool.resize(1);
  std::vector<lc::Sha256::DigestBytes> serial(count);
  lc::Sha256::hash_many({&tag, 1}, arena.data(), len, len, count, serial.data());

  for (const std::size_t lanes : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    pool.resize(lanes);
    std::vector<lc::Sha256::DigestBytes> got(count);
    lc::Sha256::hash_many({&tag, 1}, arena.data(), len, len, count, got.data());
    EXPECT_EQ(got, serial) << "lanes=" << lanes;
  }
}

TEST(WorkerPool, DecodeRoundTripsPoolEncodedShards) {
  PoolGuard guard;
  auto& pool = lu::WorkerPool::global();
  pool.resize(4);
  const std::uint32_t k = 8, n = 24;
  const le::ReedSolomon rs(k, n);
  const auto msg = random_bytes(200 * 1024, 31337);
  le::RsScratch scratch;
  const auto enc = rs.encode_into(msg, scratch);

  // Parity-only survivors force the full inversion path over pool-encoded rows.
  std::vector<lu::Bytes> stash;
  std::vector<le::ShardView> survivors;
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto view = enc.shard(n - 1 - i);
    stash.emplace_back(view.begin(), view.end());
    survivors.push_back(le::ShardView{n - 1 - i, stash.back()});
  }
  le::RsScratch dec_scratch;
  lu::Bytes out;
  ASSERT_TRUE(rs.decode_into(survivors, dec_scratch, out));
  EXPECT_EQ(out, msg);
}

TEST(WorkerPool, DecodeParityAcrossPoolSizesAndKernels) {
  PoolGuard guard;
  auto& pool = lu::WorkerPool::global();
  const auto prev_kernel = le::Gf256::active_kernel();
  // Shard width large enough to clear the parallel-dispatch threshold, so
  // the decode inversion apply actually fans out (same shape as encode).
  const std::uint32_t k = 8, n = 24;
  const le::ReedSolomon rs(k, n);
  const auto msg = random_bytes(64 * 1024 * k - 4, 424242);

  pool.resize(1);
  le::RsScratch enc_scratch;
  const auto enc = rs.encode_into(msg, enc_scratch);

  // Mixed survivor set: drop half the data rows so reconstruction needs the
  // inversion apply (not the systematic memcpy fast path).
  std::vector<lu::Bytes> stash;
  std::vector<le::ShardView> survivors;
  for (std::uint32_t i = k / 2; i < k; ++i) {
    const auto view = enc.shard(i);
    stash.emplace_back(view.begin(), view.end());
  }
  for (std::uint32_t i = 0; i < k / 2; ++i) {
    const auto view = enc.shard(k + 2 * i);  // every other parity row
    stash.emplace_back(view.begin(), view.end());
  }
  for (std::size_t i = 0; i < stash.size(); ++i) {
    const std::uint32_t index =
        i < k / 2 ? k / 2 + static_cast<std::uint32_t>(i)
                  : k + 2 * (static_cast<std::uint32_t>(i) - k / 2);
    survivors.push_back(le::ShardView{index, stash[i]});
  }

  for (const auto kernel : all_gf_kernels()) {
    le::Gf256::force_kernel(kernel);
    pool.resize(1);
    le::RsScratch serial_scratch;
    lu::Bytes serial_out;
    ASSERT_TRUE(rs.decode_into(survivors, serial_scratch, serial_out));
    ASSERT_EQ(serial_out, msg);

    for (const std::size_t lanes : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      pool.resize(lanes);
      le::RsScratch scratch;
      lu::Bytes out;
      ASSERT_TRUE(rs.decode_into(survivors, scratch, out));
      EXPECT_EQ(out, serial_out)
          << "kernel=" << le::Gf256::kernel_name(kernel) << " lanes=" << lanes;
    }
  }
  le::Gf256::force_kernel(prev_kernel);
}

// The TSan target: hammer dispatch/teardown with verification. Each
// iteration's result is checked against a serial reduction, so any lost or
// duplicated chunk (and any data race TSan can see) fails loudly.
TEST(WorkerPoolStress, RepeatedDispatchAndResizeUnderLoad) {
  PoolGuard guard;
  auto& pool = lu::WorkerPool::global();
  lu::Rng rng(99);
  std::vector<std::uint64_t> data(1 << 16);
  for (auto& v : data) v = rng.uniform(1u << 30);
  const std::uint64_t expected = std::accumulate(data.begin(), data.end(), std::uint64_t{0});

  for (int iter = 0; iter < 200; ++iter) {
    if (iter % 25 == 0) pool.resize(1 + iter / 25 % 8);
    const std::size_t count = 1 + rng.uniform(static_cast<std::uint32_t>(data.size()));
    std::uint64_t partial[lu::WorkerPool::kMaxLanes] = {};
    pool.for_ranges(count, 1 + rng.uniform(64),
                    [&](std::size_t lane, std::size_t b, std::size_t e) {
                      std::uint64_t acc = 0;
                      for (std::size_t i = b; i < e; ++i) acc += data[i];
                      partial[lane] = acc;  // disjoint per-lane slot
                    });
    std::uint64_t got = 0;
    for (const auto v : partial) got += v;
    const std::uint64_t want =
        std::accumulate(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(count),
                        std::uint64_t{0});
    ASSERT_EQ(got, want) << "iter=" << iter;
  }
  pool.resize(8);
  // A final full-array pass at max lanes.
  std::uint64_t partial[lu::WorkerPool::kMaxLanes] = {};
  pool.for_ranges(data.size(), 64, [&](std::size_t lane, std::size_t b, std::size_t e) {
    std::uint64_t acc = 0;
    for (std::size_t i = b; i < e; ++i) acc += data[i];
    partial[lane] = acc;
  });
  EXPECT_EQ(std::accumulate(partial, partial + lu::WorkerPool::kMaxLanes, std::uint64_t{0}),
            expected);
}
