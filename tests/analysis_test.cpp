// Closed-form §V cost model: formula values, asymptotics (constant vs linear
// scaling factor), the scale-up γ of Eq. (4), and retrieval cost bounds.
#include <gtest/gtest.h>

#include "analysis/cost_model.hpp"
#include <cmath>


namespace la = leopard::analysis;

TEST(CostModel, LeopardReplicaCostNearTwo) {
  // c_R = 2 + (β + 4κ/τ)/α ≈ 2 for realistic parameters (Eq. (3)).
  la::LeopardParams p;
  p.alpha_bytes = 2000 * 128;
  p.tau = 100;
  const auto c = la::leopard_replica_cost_per_bit(100, p);
  EXPECT_GT(c, 2.0);
  EXPECT_LT(c, 2.01);
}

TEST(CostModel, LeopardLeaderCostNearOneForLargeAlpha) {
  la::LeopardParams p;
  p.alpha_bytes = 4000 * 128;
  p.tau = 400;
  const auto c = la::leopard_leader_cost_per_bit(600, p);
  EXPECT_GT(c, 1.0);
  EXPECT_LT(c, 1.05);  // (β+4κ/τ)(n−1)/α is tiny
}

TEST(CostModel, LeopardScalingFactorConstantWithAdaptiveAlpha) {
  // α = λ(n−1): SF stays within a constant band as n grows 16 → 600.
  const auto p16 = la::leopard_params_for_constant_sf(16, 10, 100);
  const auto p600 = la::leopard_params_for_constant_sf(600, 10, 100);
  const auto sf16 = la::leopard_scaling_factor(16, p16);
  const auto sf600 = la::leopard_scaling_factor(600, p600);
  EXPECT_NEAR(sf16, sf600, 0.2);
  EXPECT_LT(sf600, 3.0);  // the paper's ideal: a small constant (≈2)
}

TEST(CostModel, LeopardScalingFactorGrowsWithFixedAlpha) {
  // With α fixed, the leader term grows linearly in n (the ablation point).
  la::LeopardParams p;
  p.alpha_bytes = 100 * 128;  // deliberately small
  p.tau = 10;
  const auto sf16 = la::leopard_scaling_factor(16, p);
  const auto sf600 = la::leopard_scaling_factor(600, p);
  EXPECT_GT(sf600, sf16);
}

TEST(CostModel, LeaderBasedScalingFactorIsLinear) {
  // SF = Θ(n) for leader-dissemination protocols: doubling n roughly
  // doubles SF.
  const auto sf100 = la::leader_based_scaling_factor(100, 800, true);
  const auto sf200 = la::leader_based_scaling_factor(200, 800, true);
  EXPECT_NEAR(sf200 / sf100, 2.0, 0.05);
  EXPECT_GT(sf100, 99.0);
}

TEST(CostModel, LeaderBasedReplicaCostIsConstant) {
  const auto c100 = la::leader_based_replica_cost_per_bit(100, 800, true);
  const auto c600 = la::leader_based_replica_cost_per_bit(600, 800, true);
  EXPECT_NEAR(c100, c600, 0.01);
  EXPECT_NEAR(c100, 1.0, 0.01);
}

TEST(CostModel, PbftVotesCostMoreThanAggregated) {
  const auto agg = la::leader_based_replica_cost_per_bit(300, 200, true);
  const auto flat = la::leader_based_replica_cost_per_bit(300, 200, false);
  EXPECT_GT(flat, agg);
}

TEST(CostModel, GammaIsInverseScalingFactor) {
  EXPECT_DOUBLE_EQ(la::scale_up_gamma(2.0), 0.5);
  // Leopard: γ ≈ 1/2 at every scale (Eq. (4)).
  for (std::uint32_t n : {16u, 128u, 600u}) {
    const auto p = la::leopard_params_for_constant_sf(n, 10, 100);
    const auto gamma = la::scale_up_gamma(la::leopard_scaling_factor(n, p));
    EXPECT_NEAR(gamma, 0.5, 0.05) << "n=" << n;
  }
  // HotStuff: γ ≈ 1/(n−1) → 0.
  const auto g = la::scale_up_gamma(la::leader_based_scaling_factor(300, 800, true));
  EXPECT_LT(g, 0.005);
}

TEST(CostModel, ExpectedThroughputScalesWithCapacity) {
  const auto t1 = la::expected_throughput_bps(100e6, 2.0);
  const auto t2 = la::expected_throughput_bps(200e6, 2.0);
  EXPECT_DOUBLE_EQ(t2, 2 * t1);
  EXPECT_DOUBLE_EQ(t1, 50e6);
}

TEST(CostModel, RetrievalCostsMatchPaperMagnitudes) {
  // A 2000-request × 128 B datablock (Fig. 12): recovery ≈ α plus Merkle
  // overhead; per-responder cost shrinks as ≈ α/(f+1).
  const double alpha = 2000.0 * 128.0;
  const auto recover4 = la::retrieval_recover_bytes(4, alpha);
  const auto recover128 = la::retrieval_recover_bytes(128, alpha);
  EXPECT_GT(recover4, alpha);                 // ≥ the datablock itself
  EXPECT_LT(recover128, 1.25 * alpha);        // overhead stays small
  EXPECT_GT(recover128, recover4);            // grows slightly with n (paper: 325→356 KB)

  const auto respond4 = la::retrieval_respond_bytes(4, alpha);
  const auto respond128 = la::retrieval_respond_bytes(128, alpha);
  EXPECT_GT(respond4, respond128 * 10);       // paper: 163 KB → 8 KB
}

TEST(CostModel, AttackOverheadStaysConstantPerBit) {
  // §V remark: with α = O(n log n) the per-replica overhead under the
  // selective attack remains O(1) per confirmed bit.
  const auto oh = [](std::uint32_t n) {
    const double alpha = 128.0 * 10 * n * std::log2(static_cast<double>(n));
    return la::retrieval_attack_overhead_per_bit(n, alpha);
  };
  EXPECT_NEAR(oh(64), oh(512), 0.35);
  EXPECT_LT(oh(512), 2.5);
}

TEST(CostModel, TableOneRowsMatchPaper) {
  const auto rows = la::table_one();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].protocol, "PBFT");
  EXPECT_EQ(rows[3].protocol, "Leopard");
  EXPECT_EQ(rows[3].leader_complexity, "O(1)");
  EXPECT_EQ(rows[3].scaling_factor, "O(1)");
  EXPECT_EQ(rows[3].voting_rounds_optimistic, 2);
  EXPECT_EQ(rows[3].voting_rounds_faulty, 3);
  for (const auto& row : rows) {
    if (row.protocol != "Leopard") {
      EXPECT_EQ(row.leader_complexity, "O(n)") << row.protocol;
      EXPECT_EQ(row.scaling_factor, "O(n)") << row.protocol;
    }
    EXPECT_EQ(row.replica_complexity, "O(1)") << row.protocol;
  }
}
