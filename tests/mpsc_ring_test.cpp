// MpscRing: the lock-free handoff between the transport thread and the
// per-shard io-threads (net/mpsc_ring.hpp). Covers single-consumer FIFO,
// per-producer ordering under real contention, full-ring rejection without
// losing the rejected value, and destructor drain of queued items.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/mpsc_ring.hpp"

using namespace leopard;

TEST(MpscRing, SingleThreadFifo) {
  net::MpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(int{i}));
  }
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, FullRingRejectsWithoutConsumingTheValue) {
  net::MpscRing<std::string> ring(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(std::string(64, 'a' + i)));
  }
  // The failed push must leave the value intact — the caller retries with
  // the SAME object after draining (that is the transport's spin loop).
  std::string keep(64, 'z');
  EXPECT_FALSE(ring.try_push(std::move(keep)));
  EXPECT_EQ(keep, std::string(64, 'z')) << "rejected value must not be moved from";

  std::string out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, std::string(64, 'a'));
  EXPECT_TRUE(ring.try_push(std::move(keep)));  // slot freed: same value goes in
}

TEST(MpscRing, WrapsAroundManyTimes) {
  net::MpscRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{i}));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpscRing, MultiProducerPreservesPerProducerFifo) {
  // The determinism argument for io-threads rests exactly on this: each
  // producer's items arrive in the order that producer pushed them, even
  // though producers interleave arbitrarily.
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  net::MpscRing<std::uint64_t> ring(1024);

  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t item = (p << 32) | i;
        while (!ring.try_push(std::move(item))) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = item >> 32;
    const auto seq = item & 0xFFFFFFFFu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, DestructorDrainsQueuedItems) {
  auto token = std::make_shared<int>(42);
  {
    net::MpscRing<std::shared_ptr<int>> ring(8);
    ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(token)));
    ASSERT_TRUE(ring.try_push(std::shared_ptr<int>(token)));
    EXPECT_EQ(token.use_count(), 3);
  }
  EXPECT_EQ(token.use_count(), 1) << "destructor must destroy undrained items";
}

TEST(MpscRing, MovesOwnershipThroughTheRing) {
  net::MpscRing<std::unique_ptr<int>> ring(8);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}
