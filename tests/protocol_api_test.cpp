// Sans-I/O protocol API: action-trace determinism, SimEnv equivalence (the
// recording layer must not perturb a run), offline replay fidelity, and
// fault injection at the API boundary (no network machinery required).
#include <gtest/gtest.h>

#include "cluster_fixture.hpp"
#include "protocol/replay.hpp"

using namespace leopard;
using test::ClusterOptions;
using test::LeopardCluster;

namespace {

ClusterOptions trace_opts(bool record) {
  ClusterOptions o;
  o.n = 4;
  o.protocol.datablock_requests = 50;
  o.protocol.bftblock_links = 2;
  o.protocol.datablock_max_wait = 100 * sim::kMillisecond;
  o.protocol.proposal_max_wait = 50 * sim::kMillisecond;
  o.protocol.view_timeout = 30 * sim::kSecond;
  o.client_rate_per_replica = 2000;
  o.payload_size = 64;
  o.seed = 21;
  o.record_traces = record;
  return o;
}

}  // namespace

TEST(ProtocolApi, ActionTracesAreDeterministicAcrossRuns) {
  // Same seed => byte-identical event/action traces at every replica. This is
  // the contract that makes a recorded trace a debugging artifact: any
  // divergence between two same-seed runs is a bug, and serialized traces
  // pinpoint the first divergent step.
  LeopardCluster a(trace_opts(true));
  LeopardCluster b(trace_opts(true));
  a.run_for(2.0);
  b.run_for(2.0);

  ASSERT_GT(a.metrics().executed_requests, 1000u);
  for (std::uint32_t id = 0; id < 4; ++id) {
    const auto& ta = a.trace(id);
    const auto& tb = b.trace(id);
    EXPECT_GT(ta.steps.size(), 100u) << "replica " << id << " trace is trivial";
    EXPECT_GT(ta.action_count(), 100u);
    ASSERT_EQ(ta.steps.size(), tb.steps.size()) << "replica " << id;
    EXPECT_EQ(ta.digest(), tb.digest()) << "replica " << id;
  }
}

TEST(ProtocolApi, RecordingEnvMatchesDirectRun) {
  // SimEnv-vs-direct equivalence: turning the recorder on must not change
  // protocol behaviour — confirmed logs and execution horizons are identical.
  LeopardCluster recorded(trace_opts(true));
  LeopardCluster direct(trace_opts(false));
  recorded.run_for(2.0);
  direct.run_for(2.0);

  ASSERT_GT(direct.metrics().executed_requests, 1000u);
  EXPECT_EQ(recorded.metrics().executed_requests, direct.metrics().executed_requests);
  for (std::uint32_t id = 0; id < 4; ++id) {
    EXPECT_EQ(recorded.replica(id).executed_through(), direct.replica(id).executed_through())
        << "replica " << id;
    EXPECT_EQ(recorded.replica(id).confirmed_log(), direct.replica(id).confirmed_log())
        << "replica " << id;
  }
  EXPECT_TRUE(recorded.logs_consistent());
}

TEST(ProtocolApi, ReplayReproducesRecordedBehaviour) {
  // A fresh core driven by ReplayEnv from a recorded event stream — no
  // simulator, no network — must emit the exact action trace the original
  // produced and land in the same confirmed state. Exercised for both a
  // follower (id 0, the observer) and the leader (id 1).
  LeopardCluster cluster(trace_opts(true));
  cluster.run_for(2.0);
  ASSERT_GT(cluster.metrics().executed_requests, 1000u);

  for (const std::uint32_t id : {0u, 1u}) {
    core::LeopardReplica fresh(cluster.protocol_config(), cluster.scheme(), id);
    protocol::ReplayEnv env;
    const auto replayed = env.replay(fresh, cluster.trace(id));
    EXPECT_EQ(replayed.digest(), cluster.trace(id).digest()) << "replica " << id;
    EXPECT_EQ(fresh.confirmed_log(), cluster.replica(id).confirmed_log()) << "replica " << id;
    EXPECT_EQ(fresh.executed_through(), cluster.replica(id).executed_through())
        << "replica " << id;
    EXPECT_EQ(fresh.state_digest(), cluster.replica(id).state_digest()) << "replica " << id;
  }
}

TEST(ProtocolApi, ReplayFaultInjectionDropsConfirmationsSafely) {
  // Byzantine/fuzz injection at the API boundary: drop every round-2 proof
  // delivered to the follower and replay. The core must stay well-behaved —
  // no crash, and its (reduced) confirmed log stays a subset of the
  // original's, never a conflicting entry.
  LeopardCluster cluster(trace_opts(true));
  cluster.run_for(2.0);
  ASSERT_GT(cluster.replica(0).executed_through(), 10u);

  core::LeopardReplica fresh(cluster.protocol_config(), cluster.scheme(), 0);
  protocol::ReplayEnv env;
  std::size_t dropped = 0;
  env.set_event_filter([&](protocol::TraceStep& step) {
    const auto* in = std::get_if<protocol::MessageIn>(&step.event);
    if (in == nullptr) return true;
    const auto* proof = dynamic_cast<const proto::ProofMsg*>(in->payload.get());
    if (proof != nullptr && proof->round == 2) {
      ++dropped;
      return false;
    }
    return true;
  });
  (void)env.replay(fresh, cluster.trace(0));

  EXPECT_GT(dropped, 10u);
  EXPECT_LT(fresh.confirmed_log().size(), cluster.replica(0).confirmed_log().size());
  const auto& original = cluster.replica(0).confirmed_log();
  for (const auto& [sn, digest] : fresh.confirmed_log()) {
    const auto it = original.find(sn);
    if (it != original.end()) EXPECT_EQ(it->second, digest) << "sn " << sn;
  }
}

TEST(ProtocolApi, TraceSerializationDetectsDivergence) {
  // The serialized form must distinguish traces that differ in one payload
  // byte or one dropped step — otherwise determinism checks are vacuous.
  LeopardCluster cluster(trace_opts(true));
  cluster.run_for(1.0);

  protocol::Trace copy = cluster.trace(0);
  ASSERT_GT(copy.steps.size(), 2u);
  const auto original_digest = cluster.trace(0).digest();
  copy.steps.pop_back();
  EXPECT_NE(copy.digest(), original_digest);
}
