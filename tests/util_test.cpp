// Unit tests for src/util: serialization, hex, RNG, contract checks.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/bytes.hpp"
#include "util/check.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace lu = leopard::util;

TEST(ByteWriter, RoundTripsPrimitives) {
  lu::ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  w.i64(-42);
  w.str("leopard");

  lu::ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "leopard");
  EXPECT_TRUE(r.done());
}

TEST(ByteWriter, LittleEndianLayout) {
  lu::ByteWriter w;
  w.u32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x44);
  EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(ByteWriter, BlobPrefixesLength) {
  lu::ByteWriter w;
  const std::uint8_t payload[] = {1, 2, 3};
  w.blob(payload);
  EXPECT_EQ(w.size(), 4u + 3u);

  lu::ByteReader r(w.bytes());
  const auto view = r.blob();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[2], 3);
}

TEST(ByteReader, UnderflowThrows) {
  lu::ByteWriter w;
  w.u16(7);
  lu::ByteReader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), lu::ContractViolation);
}

TEST(ByteReader, TruncatedBlobThrows) {
  lu::ByteWriter w;
  w.u32(100);  // claims 100 bytes follow, none do
  lu::ByteReader r(w.bytes());
  EXPECT_THROW(r.blob(), lu::ContractViolation);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x7f, 0x80, 0xff};
  const auto hex = lu::to_hex(bytes);
  EXPECT_EQ(hex, "007f80ff");
  EXPECT_EQ(lu::from_hex(hex), bytes);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(lu::from_hex("abc"), lu::ContractViolation);   // odd length
  EXPECT_THROW(lu::from_hex("zz"), lu::ContractViolation);    // bad digit
}

TEST(Hex, AcceptsUppercase) {
  EXPECT_EQ(lu::from_hex("FF00"), (std::vector<std::uint8_t>{0xFF, 0x00}));
}

TEST(Rng, DeterministicForSameSeed) {
  lu::Rng a(12345);
  lu::Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  lu::Rng a(1);
  lu::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  lu::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(7), 7u);
  }
}

TEST(Rng, UniformCoversRange) {
  lu::Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformRangeInclusive) {
  lu::Rng rng(3);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, UniformRealInUnitInterval) {
  lu::Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  lu::Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

TEST(Rng, FillCoversAllBytePositions) {
  lu::Rng rng(21);
  std::vector<std::uint8_t> buf(37, 0);
  rng.fill(buf.data(), buf.size());
  // Probability all 37 bytes are zero is negligible.
  bool any_nonzero = false;
  for (auto b : buf) any_nonzero |= (b != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Check, ExpectsThrowsWithMessage) {
  try {
    lu::expects(false, "custom message");
    FAIL() << "expects should have thrown";
  } catch (const lu::ContractViolation& e) {
    EXPECT_STREQ(e.what(), "custom message");
  }
}

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(lu::expects(true));
  EXPECT_NO_THROW(lu::ensures(true));
}
