// Property tests for the vectorized GF(256) bulk kernels and the zero-copy
// encode_into/decode_into pipeline: every available kernel must be
// byte-identical to the retained scalar log/exp reference, across message
// sizes from empty to 1 MiB and a (k, n) grid with random erasure patterns.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace le = leopard::erasure;
namespace lu = leopard::util;

namespace {

/// Restores the auto-detected kernel when a test that forces one exits.
class KernelGuard {
 public:
  KernelGuard() : prev_(le::Gf256::active_kernel()) {}
  ~KernelGuard() { le::Gf256::force_kernel(prev_); }

 private:
  le::Gf256::Kernel prev_;
};

std::vector<le::Gf256::Kernel> fast_kernels() {
  std::vector<le::Gf256::Kernel> out;
  for (const auto k : {le::Gf256::Kernel::kScalar64, le::Gf256::Kernel::kSsse3,
                       le::Gf256::Kernel::kNeon, le::Gf256::Kernel::kAvx2,
                       le::Gf256::Kernel::kGfni}) {
    if (le::Gf256::kernel_available(k)) out.push_back(k);
  }
  return out;
}

lu::Bytes random_message(std::size_t size, std::uint64_t seed) {
  lu::Bytes msg(size);
  lu::Rng rng(seed);
  rng.fill(msg.data(), msg.size());
  return msg;
}

}  // namespace

TEST(Gf256Kernel, AtLeastOneFastKernelAvailable) {
  EXPECT_FALSE(fast_kernels().empty());
  // The auto-detected kernel must never be the reference loop.
  EXPECT_NE(le::Gf256::active_kernel(), le::Gf256::Kernel::kScalarRef);
}

TEST(Gf256Kernel, MulRowTableMatchesScalarMul) {
  for (int c = 0; c < 256; ++c) {
    const auto* table = le::Gf256::mul_row_table(static_cast<le::Gf>(c));
    const auto* nib = le::Gf256::nibble_table(static_cast<le::Gf>(c));
    for (int x = 0; x < 256; ++x) {
      const le::Gf expected = le::Gf256::mul(static_cast<le::Gf>(c), static_cast<le::Gf>(x));
      EXPECT_EQ(table[x], expected) << "c=" << c << " x=" << x;
      EXPECT_EQ(nib[x & 0xF] ^ nib[16 + (x >> 4)], expected) << "c=" << c << " x=" << x;
    }
  }
}

TEST(Gf256Kernel, MulAddRowMatchesReferenceForEveryCoefficient) {
  KernelGuard guard;
  // Odd length exercises the 32/16/8-byte main loops plus the scalar tail.
  const std::size_t n = 1003;
  const auto src = random_message(n, 101);
  const auto base = random_message(n, 102);

  for (int c = 0; c < 256; ++c) {
    const auto coef = static_cast<le::Gf>(c);
    lu::Bytes expected = base;
    le::Gf256::mul_add_row_ref(expected.data(), src.data(), n, coef);
    for (const auto kernel : fast_kernels()) {
      le::Gf256::force_kernel(kernel);
      lu::Bytes got = base;
      le::Gf256::mul_add_row(got.data(), src.data(), n, coef);
      EXPECT_EQ(got, expected) << "coef=" << c
                               << " kernel=" << le::Gf256::kernel_name(kernel);
    }
  }
}

TEST(Gf256Kernel, MulRowMatchesReferenceForEveryCoefficient) {
  KernelGuard guard;
  const std::size_t n = 517;
  const auto src = random_message(n, 103);

  for (int c = 0; c < 256; ++c) {
    const auto coef = static_cast<le::Gf>(c);
    lu::Bytes expected(n);
    le::Gf256::mul_row_ref(expected.data(), src.data(), n, coef);
    for (const auto kernel : fast_kernels()) {
      le::Gf256::force_kernel(kernel);
      lu::Bytes got(n, 0xAA);
      le::Gf256::mul_row(got.data(), src.data(), n, coef);
      EXPECT_EQ(got, expected) << "coef=" << c
                               << " kernel=" << le::Gf256::kernel_name(kernel);
    }
  }
}

TEST(Gf256Kernel, ShortBuffersHitTailPaths) {
  KernelGuard guard;
  lu::Rng rng(104);
  for (std::size_t n = 0; n <= 40; ++n) {
    lu::Bytes src(n), base(n);
    rng.fill(src.data(), src.size());
    rng.fill(base.data(), base.size());
    for (int c : {0, 1, 2, 0x53, 0xFF}) {
      lu::Bytes expected = base;
      le::Gf256::mul_add_row_ref(expected.data(), src.data(), n, static_cast<le::Gf>(c));
      for (const auto kernel : fast_kernels()) {
        le::Gf256::force_kernel(kernel);
        lu::Bytes got = base;
        le::Gf256::mul_add_row(got.data(), src.data(), n, static_cast<le::Gf>(c));
        EXPECT_EQ(got, expected) << "n=" << n << " coef=" << c;
      }
    }
  }
}

TEST(Gf256Kernel, PowLargeExponentReducedBeforeMultiply) {
  // Regression: (log(a) * e) overflowed 32-bit unsigned for large e.
  for (int a = 1; a < 256; ++a) {
    const auto base = static_cast<le::Gf>(a);
    for (const unsigned e : {255u, 256u, 65537u, 4000000000u, 4294967295u}) {
      // Square-and-multiply oracle.
      le::Gf expected = 1;
      le::Gf sq = base;
      for (unsigned bits = e; bits != 0; bits >>= 1) {
        if (bits & 1) expected = le::Gf256::mul(expected, sq);
        sq = le::Gf256::mul(sq, sq);
      }
      EXPECT_EQ(le::Gf256::pow(base, e), expected) << "a=" << a << " e=" << e;
    }
  }
  EXPECT_EQ(le::Gf256::pow(0, 0), 1);
  EXPECT_EQ(le::Gf256::pow(0, 4000000000u), 0);
}

// ---------------------------------------------------------------------------
// Encode/decode pipeline properties
// ---------------------------------------------------------------------------

namespace {

/// Encodes with the reference kernel and with every fast kernel; asserts all
/// outputs are byte-identical, then random-erasure round-trips each.
void check_kernel_parity(std::uint32_t k, std::uint32_t n, const lu::Bytes& msg,
                         int erasure_trials) {
  KernelGuard guard;
  const le::ReedSolomon rs(k, n);

  le::Gf256::force_kernel(le::Gf256::Kernel::kScalarRef);
  const auto ref_shards = rs.encode(msg);
  ASSERT_EQ(ref_shards.size(), n);

  for (const auto kernel : fast_kernels()) {
    le::Gf256::force_kernel(kernel);
    le::RsScratch scratch;
    const auto enc = rs.encode_into(msg, scratch);
    ASSERT_EQ(enc.count, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto view = enc.shard(i);
      ASSERT_TRUE(std::equal(view.begin(), view.end(), ref_shards[i].data.begin(),
                             ref_shards[i].data.end()))
          << "kernel=" << le::Gf256::kernel_name(kernel) << " k=" << k << " n=" << n
          << " size=" << msg.size() << " shard=" << i;
    }

    // Random k-subsets of survivors must reconstruct the message through the
    // zero-copy decode path (shard views borrow the reference shards).
    lu::Rng rng(k * 7919 + n * 31 + msg.size());
    for (int trial = 0; trial < erasure_trials; ++trial) {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.uniform(i)]);
      std::vector<le::ShardView> survivors;
      for (std::uint32_t i = 0; i < k; ++i) {
        survivors.push_back(le::ShardView{ref_shards[order[i]].index,
                                          ref_shards[order[i]].data});
      }
      lu::Bytes out;
      ASSERT_TRUE(rs.decode_into(survivors, scratch, out));
      EXPECT_EQ(out, msg) << "kernel=" << le::Gf256::kernel_name(kernel) << " k=" << k
                          << " n=" << n << " size=" << msg.size();
    }
  }
}

}  // namespace

class KernelParitySweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(KernelParitySweep, NewKernelsMatchScalarReference) {
  const auto [k, n] = GetParam();
  for (const std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                                 std::size_t{64}, std::size_t{4096}}) {
    check_kernel_parity(k, n, random_message(size, size * 131 + k), /*erasure_trials=*/4);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, KernelParitySweep,
                         ::testing::Values(std::make_tuple(1u, 4u), std::make_tuple(2u, 4u),
                                           std::make_tuple(3u, 7u), std::make_tuple(4u, 12u),
                                           std::make_tuple(8u, 24u), std::make_tuple(16u, 48u),
                                           std::make_tuple(32u, 96u),
                                           std::make_tuple(64u, 192u)));

TEST(KernelParity, OneMebibyteMessage) {
  // The large-message case runs on a smaller grid to bound test time; it is
  // the configuration the bench's 10x acceptance target uses (k=32).
  check_kernel_parity(4, 12, random_message(1 << 20, 7001), /*erasure_trials=*/2);
  check_kernel_parity(32, 96, random_message(1 << 20, 7002), /*erasure_trials=*/2);
}

TEST(EncodeInto, MatchesLegacyEncodeAndSharesArena) {
  const le::ReedSolomon rs(5, 11);
  const auto msg = random_message(3000, 42);
  const auto legacy = rs.encode(msg);

  le::RsScratch scratch;
  const auto enc = rs.encode_into(msg, scratch);
  ASSERT_EQ(enc.count, 11u);
  EXPECT_EQ(enc.width, rs.shard_size(msg.size()));
  // The arena is contiguous: shard(i) aliases bytes() at offset i*width.
  EXPECT_EQ(enc.bytes().size(), enc.width * enc.count);
  for (std::uint32_t i = 0; i < enc.count; ++i) {
    EXPECT_EQ(enc.shard(i).data(), enc.bytes().data() + i * enc.width);
    EXPECT_TRUE(std::equal(enc.shard(i).begin(), enc.shard(i).end(),
                           legacy[i].data.begin(), legacy[i].data.end()))
        << "shard " << i;
  }
}

TEST(EncodeInto, ScratchReuseAcrossSizesIsClean) {
  // A big encode followed by a small one must not leak stale arena bytes.
  const le::ReedSolomon rs(3, 9);
  le::RsScratch scratch;
  (void)rs.encode_into(random_message(100000, 1), scratch);
  const auto small = random_message(10, 2);
  const auto enc = rs.encode_into(small, scratch);
  const auto legacy = rs.encode(small);
  for (std::uint32_t i = 0; i < enc.count; ++i) {
    EXPECT_TRUE(std::equal(enc.shard(i).begin(), enc.shard(i).end(),
                           legacy[i].data.begin(), legacy[i].data.end()));
  }
  // Copy the shards out first: encode_into views alias the scratch arena and
  // are invalidated by the decode_into call below.
  std::vector<lu::Bytes> owned;
  for (std::uint32_t i = 3; i < 6; ++i) {
    owned.emplace_back(enc.shard(i).begin(), enc.shard(i).end());
  }
  std::vector<le::ShardView> views;
  for (std::uint32_t i = 0; i < 3; ++i) views.push_back(le::ShardView{3 + i, owned[i]});
  lu::Bytes out;
  ASSERT_TRUE(rs.decode_into(views, scratch, out));
  EXPECT_EQ(out, small);
}

TEST(EncodeInto, EmptyMessageRoundTrips) {
  // Regression: memcpy(dst, nullptr, 0) from an empty message was UB.
  const le::ReedSolomon rs(3, 5);
  le::RsScratch scratch;
  const auto enc = rs.encode_into({}, scratch);
  std::vector<le::ShardView> views;
  for (std::uint32_t i = 2; i < 5; ++i) views.push_back(le::ShardView{i, enc.shard(i)});
  lu::Bytes out(16, 0xFF);
  ASSERT_TRUE(rs.decode_into(views, scratch, out));
  EXPECT_TRUE(out.empty());
}

TEST(DecodeInto, CorruptLengthHeaderRejected) {
  // Regression: a corrupt header with len near UINT32_MAX made `len + 4`
  // wrap, passing the bounds check and reading far out of range.
  const le::ReedSolomon rs(2, 4);
  auto shards = rs.encode(random_message(16, 3));
  for (int i = 0; i < 4; ++i) shards[0].data[i] = 0xFF;  // len = UINT32_MAX
  EXPECT_FALSE(rs.decode(shards).has_value());

  le::RsScratch scratch;
  lu::Bytes out;
  const std::vector<le::ShardView> views = {le::ShardView{0, shards[0].data},
                                            le::ShardView{1, shards[1].data}};
  EXPECT_FALSE(rs.decode_into(views, scratch, out));
}

TEST(DecodeInto, ShardsTooSmallForHeaderRejected) {
  // Adversarial 1-byte shards cannot hold the 4-byte length header.
  const le::ReedSolomon rs(1, 2);
  const lu::Bytes tiny = {0x7F};
  le::RsScratch scratch;
  lu::Bytes out;
  const std::vector<le::ShardView> views = {le::ShardView{0, tiny}};
  EXPECT_FALSE(rs.decode_into(views, scratch, out));
}
