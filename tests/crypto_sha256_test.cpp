// SHA-256 / HMAC-SHA-256 correctness against published test vectors
// (FIPS 180-4 examples and RFC 4231).
#include <gtest/gtest.h>

#include <string>

#include "crypto/digest.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/hex.hpp"

namespace lc = leopard::crypto;
namespace lu = leopard::util;

namespace {
std::string hash_hex(std::string_view msg) {
  return lu::to_hex(lc::Sha256::hash(lu::as_bytes(msg)));
}
}  // namespace

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  // FIPS 180-4 example #2 (448-bit message spanning the padding boundary).
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  lc::Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(lu::as_bytes(chunk));
  EXPECT_EQ(lu::to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, across block "
      "boundaries of the compression function to exercise buffering.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    lc::Sha256 ctx;
    ctx.update(lu::as_bytes(std::string_view(msg).substr(0, split)));
    ctx.update(lu::as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(lu::to_hex(ctx.finalize()), hash_hex(msg)) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockSizedMessages) {
  // 55/56/63/64/65 bytes straddle the padding rules.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    lc::Sha256 a;
    a.update(lu::as_bytes(msg));
    EXPECT_EQ(lu::to_hex(a.finalize()), hash_hex(msg)) << "len " << len;
  }
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  lc::Sha256 ctx;
  ctx.update(lu::as_bytes("abc"));
  (void)ctx.finalize();
  EXPECT_THROW(ctx.update(lu::as_bytes("more")), lu::ContractViolation);
  EXPECT_THROW((void)ctx.finalize(), lu::ContractViolation);
}

TEST(Digest, EqualityAndOrdering) {
  const auto a = lc::Digest::of_string("a");
  const auto b = lc::Digest::of_string("b");
  EXPECT_EQ(a, lc::Digest::of_string("a"));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(Digest, ZeroDetection) {
  lc::Digest zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(lc::Digest::of_string("x").is_zero());
}

TEST(Digest, HexFormats) {
  const auto d = lc::Digest::of_string("abc");
  EXPECT_EQ(d.hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(d.short_hex(), "ba7816bf");
}

TEST(Digest, Prefix64MatchesBytes) {
  const auto d = lc::Digest::of_string("abc");
  // First 8 bytes little-endian: ba 78 16 bf 8f 01 cf ea.
  EXPECT_EQ(d.prefix64(), 0xeacf018fbf1678baULL);
}

// RFC 4231 test cases for HMAC-SHA-256.
TEST(HmacSha256, Rfc4231Case1) {
  const auto key = lu::from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto result = lc::hmac_sha256(key, lu::as_bytes("Hi There"));
  EXPECT_EQ(lu::to_hex(result),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto result = lc::hmac_sha256(lu::as_bytes("Jefe"),
                                      lu::as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(lu::to_hex(result),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3_FiftyBytes) {
  const auto key = lu::from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(lu::to_hex(lc::hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6_LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto result = lc::hmac_sha256(
      key, lu::as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(lu::to_hex(result),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}
