// SHA-256 / HMAC-SHA-256 correctness against published test vectors
// (FIPS 180-4 examples and RFC 4231), plus kernel-parity property sweeps:
// every available hardware kernel must be byte-identical to the portable
// reference across sizes, chunkings, and the multi-buffer drivers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace lc = leopard::crypto;
namespace lu = leopard::util;

namespace {

std::string hash_hex(std::string_view msg) {
  return lu::to_hex(lc::Sha256::hash(lu::as_bytes(msg)));
}

/// Restores the auto-detected kernel when a test that forces one exits.
class Sha256KernelGuard {
 public:
  Sha256KernelGuard() : prev_(lc::Sha256::active_kernel()) {}
  ~Sha256KernelGuard() { lc::Sha256::force_kernel(prev_); }

 private:
  lc::Sha256::Kernel prev_;
};

std::vector<lc::Sha256::Kernel> all_available_kernels() {
  std::vector<lc::Sha256::Kernel> out;
  for (const auto k : {lc::Sha256::Kernel::kPortable, lc::Sha256::Kernel::kShaNi,
                       lc::Sha256::Kernel::kArmCe, lc::Sha256::Kernel::kAvx2,
                       lc::Sha256::Kernel::kSse2, lc::Sha256::Kernel::kNeon}) {
    if (lc::Sha256::kernel_available(k)) out.push_back(k);
  }
  return out;
}

lu::Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  lu::Bytes out(size);
  lu::Rng rng(seed);
  rng.fill(out.data(), out.size());
  return out;
}

}  // namespace

TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  // FIPS 180-4 example #2 (448-bit message spanning the padding boundary).
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  lc::Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(lu::as_bytes(chunk));
  EXPECT_EQ(lu::to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, across block "
      "boundaries of the compression function to exercise buffering.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    lc::Sha256 ctx;
    ctx.update(lu::as_bytes(std::string_view(msg).substr(0, split)));
    ctx.update(lu::as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(lu::to_hex(ctx.finalize()), hash_hex(msg)) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockSizedMessages) {
  // 55/56/63/64/65 bytes straddle the padding rules.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    lc::Sha256 a;
    a.update(lu::as_bytes(msg));
    EXPECT_EQ(lu::to_hex(a.finalize()), hash_hex(msg)) << "len " << len;
  }
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  lc::Sha256 ctx;
  ctx.update(lu::as_bytes("abc"));
  (void)ctx.finalize();
  EXPECT_THROW(ctx.update(lu::as_bytes("more")), lu::ContractViolation);
  EXPECT_THROW((void)ctx.finalize(), lu::ContractViolation);
}

TEST(Digest, EqualityAndOrdering) {
  const auto a = lc::Digest::of_string("a");
  const auto b = lc::Digest::of_string("b");
  EXPECT_EQ(a, lc::Digest::of_string("a"));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(Digest, ZeroDetection) {
  lc::Digest zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(lc::Digest::of_string("x").is_zero());
}

TEST(Digest, HexFormats) {
  const auto d = lc::Digest::of_string("abc");
  EXPECT_EQ(d.hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(d.short_hex(), "ba7816bf");
}

TEST(Digest, Prefix64MatchesBytes) {
  const auto d = lc::Digest::of_string("abc");
  // First 8 bytes little-endian: ba 78 16 bf 8f 01 cf ea.
  EXPECT_EQ(d.prefix64(), 0xeacf018fbf1678baULL);
}

// RFC 4231 test cases for HMAC-SHA-256.
TEST(HmacSha256, Rfc4231Case1) {
  const auto key = lu::from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const auto result = lc::hmac_sha256(key, lu::as_bytes("Hi There"));
  EXPECT_EQ(lu::to_hex(result),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto result = lc::hmac_sha256(lu::as_bytes("Jefe"),
                                      lu::as_bytes("what do ya want for nothing?"));
  EXPECT_EQ(lu::to_hex(result),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3_FiftyBytes) {
  const auto key = lu::from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(lu::to_hex(lc::hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6_LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto result = lc::hmac_sha256(
      key, lu::as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(lu::to_hex(result),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacContext, ReusedContextMatchesOneShot) {
  const auto key = lu::from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const lc::HmacContext ctx(key);
  // A context is reusable: repeated MACs under one key must all match the
  // one-shot function (which redoes the pad schedule every call).
  for (const std::string_view msg : {"Hi There", "", "another message entirely"}) {
    EXPECT_EQ(lu::to_hex(ctx.mac(lu::as_bytes(msg))),
              lu::to_hex(lc::hmac_sha256(key, lu::as_bytes(msg))))
        << "msg=" << msg;
  }
}

TEST(HmacContext, PairApisMatchSequentialMacs) {
  const auto key = random_bytes(32, 901);
  const lc::HmacContext ctx(key);
  for (const std::size_t len : {std::size_t{0}, std::size_t{40}, std::size_t{64},
                                std::size_t{1000}}) {
    const auto m0 = random_bytes(len, 902 + len);
    const auto m1 = random_bytes(len + 17, 903 + len);  // asymmetric lengths
    lc::Sha256::DigestBytes p0, p1;
    ctx.mac_pair(m0, m1, p0, p1);
    EXPECT_EQ(p0, ctx.mac(m0)) << "len=" << len;
    EXPECT_EQ(p1, ctx.mac(m1)) << "len=" << len;

    // Tagged pair: HMAC(key, tag || m) without materializing the concat.
    lc::Sha256::DigestBytes t0, t1;
    ctx.mac_tagged_pair(0x00, 0x01, m0, t0, t1);
    lu::Bytes cat0, cat1;
    cat0.push_back(0x00);
    cat0.insert(cat0.end(), m0.begin(), m0.end());
    cat1.push_back(0x01);
    cat1.insert(cat1.end(), m0.begin(), m0.end());
    EXPECT_EQ(t0, ctx.mac(cat0)) << "len=" << len;
    EXPECT_EQ(t1, ctx.mac(cat1)) << "len=" << len;
  }
}

TEST(HmacContext, TaggedCrossMatchesSequentialMacsAcrossKeys) {
  const lc::HmacContext ctx_a(random_bytes(32, 910));
  const lc::HmacContext ctx_b(random_bytes(32, 911));
  // Sweep across the fused single-block boundary (tag+msg <= 54 bytes fuses;
  // longer messages fall back to the incremental path).
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{32}, std::size_t{54}, std::size_t{55}, std::size_t{200}}) {
    const auto msg = random_bytes(len, 912 + len);
    for (const std::uint8_t tag : {std::uint8_t{0x00}, std::uint8_t{0x01}}) {
      lc::Sha256::DigestBytes ca, cb;
      lc::HmacContext::mac_tagged_cross(ctx_a, ctx_b, tag, msg, ca, cb);
      lu::Bytes cat;
      cat.push_back(tag);
      cat.insert(cat.end(), msg.begin(), msg.end());
      EXPECT_EQ(ca, ctx_a.mac(cat)) << "len=" << len << " tag=" << int(tag);
      EXPECT_EQ(cb, ctx_b.mac(cat)) << "len=" << len << " tag=" << int(tag);
    }
  }
}

TEST(HmacContext, TaggedCrossParityUnderEveryKernel) {
  const auto prev = lc::Sha256::active_kernel();
  const lc::HmacContext ctx_a(random_bytes(32, 920));
  const lc::HmacContext ctx_b(random_bytes(32, 921));
  const auto msg = random_bytes(32, 922);  // the vote shape: a digest
  lu::Bytes cat;
  cat.push_back(0x01);
  cat.insert(cat.end(), msg.begin(), msg.end());
  for (const auto k : {lc::Sha256::Kernel::kPortable, lc::Sha256::Kernel::kShaNi,
                       lc::Sha256::Kernel::kArmCe}) {
    if (!lc::Sha256::kernel_available(k)) continue;
    lc::Sha256::force_kernel(k);
    lc::Sha256::DigestBytes ca, cb;
    lc::HmacContext::mac_tagged_cross(ctx_a, ctx_b, 0x01, msg, ca, cb);
    EXPECT_EQ(ca, ctx_a.mac(cat)) << lc::Sha256::kernel_name(k);
    EXPECT_EQ(cb, ctx_b.mac(cat)) << lc::Sha256::kernel_name(k);
  }
  lc::Sha256::force_kernel(prev);
}

// ---------------------------------------------------------------------------
// Kernel dispatch and parity
// ---------------------------------------------------------------------------

TEST(Sha256Kernel, PortableAlwaysAvailable) {
  EXPECT_TRUE(lc::Sha256::kernel_available(lc::Sha256::Kernel::kPortable));
  // force_kernel clamps unsupported requests to the detected kernel.
  Sha256KernelGuard guard;
  const auto installed = lc::Sha256::force_kernel(lc::Sha256::Kernel::kPortable);
  EXPECT_EQ(installed, lc::Sha256::Kernel::kPortable);
  EXPECT_EQ(lc::Sha256::active_kernel(), lc::Sha256::Kernel::kPortable);
}

TEST(Sha256Kernel, FipsVectorsPassUnderEveryKernel) {
  Sha256KernelGuard guard;
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    SCOPED_TRACE(lc::Sha256::kernel_name(kernel));
    // FIPS 180-4 examples plus the NIST 896-bit two-block message.
    EXPECT_EQ(hash_hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(hash_hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    EXPECT_EQ(hash_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                       "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
              "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
    lc::Sha256 ctx;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) ctx.update(lu::as_bytes(chunk));
    EXPECT_EQ(lu::to_hex(ctx.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
  }
}

TEST(Sha256Kernel, ParitySweepAgainstPortableReference) {
  Sha256KernelGuard guard;
  // Sizes straddling every padding/buffering boundary up to 1 MiB.
  const std::size_t sizes[] = {0,   1,   3,    55,   56,    63,    64,       65,
                               127, 128, 129,  192,  1000,  4096,  65535,    65536,
                               1u << 20};
  for (const std::size_t size : sizes) {
    const auto msg = random_bytes(size, size * 2654435761u + 17);
    lc::Sha256::force_kernel(lc::Sha256::Kernel::kPortable);
    const auto expected = lc::Sha256::hash(msg);
    for (const auto kernel : all_available_kernels()) {
      lc::Sha256::force_kernel(kernel);
      EXPECT_EQ(lc::Sha256::hash(msg), expected)
          << "size=" << size << " kernel=" << lc::Sha256::kernel_name(kernel);
    }
  }
}

TEST(Sha256Kernel, ChunkedIncrementalUpdatesMatchOneShot) {
  Sha256KernelGuard guard;
  const auto msg = random_bytes(10000, 404);
  lc::Sha256::force_kernel(lc::Sha256::Kernel::kPortable);
  const auto expected = lc::Sha256::hash(msg);
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    // Deterministically varied chunk sizes exercise the carry-buffer paths:
    // sub-block dribbles, exact blocks, and multi-block spans.
    lu::Rng rng(505);
    lc::Sha256 ctx;
    std::size_t off = 0;
    while (off < msg.size()) {
      const std::size_t take = std::min<std::size_t>(rng.uniform(300) + 1, msg.size() - off);
      ctx.update({msg.data() + off, take});
      off += take;
    }
    EXPECT_EQ(ctx.finalize(), expected) << lc::Sha256::kernel_name(kernel);
  }
}

TEST(Sha256Kernel, UpdateTwoMatchesSequentialForAsymmetricStreams) {
  Sha256KernelGuard guard;
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    // Asymmetric lengths force the paired driver through its unpaired tails.
    for (const auto [la, lb] : {std::pair<std::size_t, std::size_t>{0, 0},
                                {1, 200},
                                {64, 64},
                                {63, 65},
                                {1000, 5000},
                                {4096, 4096}}) {
      const auto da = random_bytes(la, la * 31 + 1);
      const auto db = random_bytes(lb, lb * 37 + 2);
      lc::Sha256 a, b;
      lc::Sha256::update_two(a, da, b, db);
      lc::Sha256::DigestBytes out_a, out_b;
      lc::Sha256::finalize_two(a, b, out_a, out_b);
      EXPECT_EQ(out_a, lc::Sha256::hash(da))
          << "la=" << la << " kernel=" << lc::Sha256::kernel_name(kernel);
      EXPECT_EQ(out_b, lc::Sha256::hash(db))
          << "lb=" << lb << " kernel=" << lc::Sha256::kernel_name(kernel);
    }
  }
}

TEST(Sha256Kernel, HashManyMatchesIndividualHashes) {
  Sha256KernelGuard guard;
  const std::uint8_t tag = 0x00;
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    // Counts straddling the wide-batch boundaries (8-lane groups, padded tail
    // groups, pair and single remainders), strides equal to and larger than
    // the row length.
    for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                    std::size_t{7}, std::size_t{8}, std::size_t{9},
                                    std::size_t{16}, std::size_t{31}}) {
      for (const std::size_t len : {std::size_t{1}, std::size_t{64}, std::size_t{1024}}) {
        const std::size_t stride = len + (count % 2 == 0 ? 0 : 8);
        const auto arena = random_bytes(stride * count, count * 1009 + len);
        std::vector<lc::Sha256::DigestBytes> got(count);
        lc::Sha256::hash_many({&tag, 1}, arena.data(), stride, len, count, got.data());
        for (std::size_t i = 0; i < count; ++i) {
          lc::Sha256 ref;
          ref.update({&tag, 1});
          ref.update({arena.data() + i * stride, len});
          EXPECT_EQ(got[i], ref.finalize())
              << "i=" << i << " count=" << count << " len=" << len << " kernel="
              << lc::Sha256::kernel_name(kernel);
        }
      }
    }
  }
}

TEST(Sha256Kernel, WideKernelParityVsPortableAcrossSizes) {
  Sha256KernelGuard guard;
  // The 8-wide/4-wide transposed kernels must be byte-identical to the
  // portable oracle from the empty message up to 1 MiB rows, including every
  // padding boundary around one block.
  const std::size_t sizes[] = {0,  1,  31,  32,  54,   55,    56,     63,
                               64, 65, 127, 128, 1000, 65536, 1u << 20};
  for (const std::size_t len : sizes) {
    constexpr std::size_t kCount = 9;  // one full 8-lane group + a single
    const auto arena = random_bytes(std::max<std::size_t>(len, 1) * kCount, len * 77 + 5);
    lc::Sha256::force_kernel(lc::Sha256::Kernel::kPortable);
    std::vector<lc::Sha256::DigestBytes> expected(kCount);
    lc::Sha256::hash_many({}, arena.data(), len, len, kCount, expected.data());
    for (const auto kernel : all_available_kernels()) {
      if (kernel == lc::Sha256::Kernel::kPortable) continue;
      lc::Sha256::force_kernel(kernel);
      std::vector<lc::Sha256::DigestBytes> got(kCount);
      lc::Sha256::hash_many({}, arena.data(), len, len, kCount, got.data());
      EXPECT_EQ(got, expected) << "len=" << len
                               << " kernel=" << lc::Sha256::kernel_name(kernel);
    }
  }
}

TEST(Sha256Kernel, UpdateManyMatchesSequentialAcrossChunkBoundaries) {
  Sha256KernelGuard guard;
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    // Feed 6 asymmetric streams through update_many in deterministically
    // ragged chunks: lanes top up carry buffers, run dry mid-batch, and
    // straddle block boundaries at different offsets.
    constexpr std::size_t kLanes = 6;
    const std::size_t lens[kLanes] = {0, 1, 63, 64, 200, 5000};
    std::vector<lu::Bytes> msgs;
    for (std::size_t l = 0; l < kLanes; ++l) msgs.push_back(random_bytes(lens[l], 70 + l));

    lc::Sha256 ctxs[kLanes];
    lc::Sha256* ptrs[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) ptrs[l] = &ctxs[l];
    lu::Rng rng(606);
    std::size_t off[kLanes] = {};
    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::span<const std::uint8_t> chunks[kLanes];
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::size_t left = msgs[l].size() - off[l];
        const std::size_t take = std::min<std::size_t>(rng.uniform(150), left);
        chunks[l] = {msgs[l].data() + off[l], take};
        off[l] += take;
        progressed = progressed || left > 0;
      }
      lc::Sha256::update_many(ptrs, chunks, kLanes);
    }
    lc::Sha256::DigestBytes out[kLanes];
    lc::Sha256::finalize_many(ptrs, out, kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      EXPECT_EQ(out[l], lc::Sha256::hash(msgs[l]))
          << "lane=" << l << " kernel=" << lc::Sha256::kernel_name(kernel);
    }
  }
}

TEST(HmacContext, TaggedCrossManyMatchesPerKeyMacs) {
  Sha256KernelGuard guard;
  constexpr std::size_t kKeys = 9;  // exceeds one 8-lane group
  std::vector<lc::HmacContext> ctxs;
  for (std::size_t i = 0; i < kKeys; ++i) ctxs.emplace_back(random_bytes(32, 930 + i));
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    // Fused (<= 54 bytes) and incremental-fallback message lengths, every
    // batch size from a single lane through the padded and full wide groups.
    for (const std::size_t len : {std::size_t{32}, std::size_t{54}, std::size_t{200}}) {
      const auto msg = random_bytes(len, 940 + len);
      lu::Bytes cat;
      cat.push_back(0x01);
      cat.insert(cat.end(), msg.begin(), msg.end());
      for (std::size_t count = 1; count <= kKeys; ++count) {
        const lc::HmacContext* ptrs[kKeys];
        for (std::size_t i = 0; i < count; ++i) ptrs[i] = &ctxs[i];
        lc::Sha256::DigestBytes out[kKeys];
        lc::HmacContext::mac_tagged_cross_many(ptrs, count, 0x01, msg, out);
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(out[i], ctxs[i].mac(cat))
              << "i=" << i << " count=" << count << " len=" << len
              << " kernel=" << lc::Sha256::kernel_name(kernel);
        }
      }
    }
  }
}

TEST(HmacContext, TaggedPairFusedBoundarySweepUnderEveryKernel) {
  Sha256KernelGuard guard;
  const lc::HmacContext ctx(random_bytes(32, 950));
  // The fused single-block fast path (satellite of the sign_share/verify_share
  // reuse): sweep across the one-block padding boundary at 54/55 bytes.
  for (const auto kernel : all_available_kernels()) {
    lc::Sha256::force_kernel(kernel);
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{32}, std::size_t{53}, std::size_t{54},
          std::size_t{55}, std::size_t{64}, std::size_t{200}}) {
      const auto msg = random_bytes(len, 960 + len);
      lc::Sha256::DigestBytes t0, t1;
      ctx.mac_tagged_pair(0x00, 0x01, msg, t0, t1);
      lu::Bytes cat0, cat1;
      cat0.push_back(0x00);
      cat0.insert(cat0.end(), msg.begin(), msg.end());
      cat1.push_back(0x01);
      cat1.insert(cat1.end(), msg.begin(), msg.end());
      EXPECT_EQ(t0, ctx.mac(cat0)) << "len=" << len
                                   << " kernel=" << lc::Sha256::kernel_name(kernel);
      EXPECT_EQ(t1, ctx.mac(cat1)) << "len=" << len
                                   << " kernel=" << lc::Sha256::kernel_name(kernel);
    }
  }
}
