// Threshold signature scheme TS = (TSig, TVrf, TSR): share validity,
// combination threshold, uniqueness, and wire sizes (κ = 48 bytes).
#include <gtest/gtest.h>

#include <vector>

#include "crypto/threshold_sig.hpp"
#include "util/bytes.hpp"
#include "util/check.hpp"
#include "util/worker_pool.hpp"

namespace lc = leopard::crypto;
namespace lu = leopard::util;

namespace {
constexpr std::uint32_t kN = 7;          // n = 3f+1 with f = 2
constexpr std::uint32_t kThreshold = 5;  // 2f+1

lc::ThresholdScheme make_scheme() { return lc::ThresholdScheme(kN, kThreshold, 42); }

std::vector<lc::SignatureShare> shares_from(const lc::ThresholdScheme& ts,
                                            const lc::Digest& msg,
                                            std::initializer_list<std::uint32_t> signers) {
  std::vector<lc::SignatureShare> out;
  for (auto i : signers) out.push_back(ts.sign_share(i, msg));
  return out;
}
}  // namespace

TEST(ThresholdSig, ShareSizesMatchPaper) {
  EXPECT_EQ(lc::kSignatureSize, 48u);                    // κ
  EXPECT_EQ(lc::SignatureShare::kWireSize, 52u);         // signer id + share
  EXPECT_EQ(lc::ThresholdSignature::kWireSize, 48u);     // combined proof
}

TEST(ThresholdSig, ValidShareVerifies) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("proposal");
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(ts.verify_share(msg, ts.sign_share(i, msg)));
  }
}

TEST(ThresholdSig, ShareDoesNotVerifyOtherMessage) {
  const auto ts = make_scheme();
  const auto share = ts.sign_share(0, lc::Digest::of_string("m1"));
  EXPECT_FALSE(ts.verify_share(lc::Digest::of_string("m2"), share));
}

TEST(ThresholdSig, ShareBoundToSigner) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("m");
  auto share = ts.sign_share(2, msg);
  share.signer = 3;  // claim another identity
  EXPECT_FALSE(ts.verify_share(msg, share));
}

TEST(ThresholdSig, TamperedShareRejected) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("m");
  auto share = ts.sign_share(1, msg);
  share.bytes[10] ^= 0x01;
  EXPECT_FALSE(ts.verify_share(msg, share));
}

TEST(ThresholdSig, OutOfRangeSignerRejected) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("m");
  auto share = ts.sign_share(0, msg);
  share.signer = kN + 3;
  EXPECT_FALSE(ts.verify_share(msg, share));
  EXPECT_THROW((void)ts.sign_share(kN, msg), lu::ContractViolation);
}

TEST(ThresholdSig, CombineWithExactThreshold) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("block-7");
  const auto sig = ts.combine(msg, shares_from(ts, msg, {0, 1, 2, 3, 4}));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(ts.verify(msg, *sig));
}

TEST(ThresholdSig, CombineBelowThresholdFails) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("block-7");
  EXPECT_FALSE(ts.combine(msg, shares_from(ts, msg, {0, 1, 2, 3})).has_value());
}

TEST(ThresholdSig, DuplicateSharesDoNotCount) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("dup");
  auto shares = shares_from(ts, msg, {0, 1, 2, 3});
  shares.push_back(ts.sign_share(3, msg));  // duplicate signer
  EXPECT_FALSE(ts.combine(msg, shares).has_value());
}

TEST(ThresholdSig, InvalidSharesDoNotCount) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("inv");
  auto shares = shares_from(ts, msg, {0, 1, 2, 3});
  auto bad = ts.sign_share(4, msg);
  bad.bytes[0] ^= 0xFF;
  shares.push_back(bad);
  EXPECT_FALSE(ts.combine(msg, shares).has_value());
}

TEST(ThresholdSig, CombineBatchedPairsMatchOddCounts) {
  // combine() verifies shares in cross-keyed n-lane batches; odd counts leave
  // a tail share on the single-evaluation path. Both shapes must agree.
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("odd-even");
  const auto even = ts.combine(msg, shares_from(ts, msg, {0, 1, 2, 3, 4, 5}));
  const auto odd = ts.combine(msg, shares_from(ts, msg, {0, 1, 2, 3, 4}));
  ASSERT_TRUE(even.has_value());
  ASSERT_TRUE(odd.has_value());
  EXPECT_EQ(even->bytes, odd->bytes);  // unique-signature property
}

TEST(ThresholdSig, CombineEveryQuorumSizeAroundWideBatches) {
  // A larger scheme so quorums span several wide groups (8 lanes under AVX2)
  // plus padded-tail and singles remainders. Every count from the threshold
  // up must combine to the same unique signature; threshold-1 must fail.
  constexpr std::uint32_t n = 25, threshold = 17;
  const lc::ThresholdScheme ts(n, threshold, 4242);
  const auto msg = lc::Digest::of_string("wide-batches");
  std::vector<lc::SignatureShare> shares;
  for (std::uint32_t i = 0; i < n; ++i) shares.push_back(ts.sign_share(i, msg));

  std::optional<lc::ThresholdSignature> reference;
  for (std::uint32_t count = threshold; count <= n; ++count) {
    const auto sig = ts.combine(
        msg, std::span<const lc::SignatureShare>(shares.data(), count));
    ASSERT_TRUE(sig.has_value()) << "count=" << count;
    if (!reference) reference = sig;
    EXPECT_EQ(sig->bytes, reference->bytes) << "count=" << count;
  }
  EXPECT_FALSE(ts.combine(msg, std::span<const lc::SignatureShare>(shares.data(),
                                                                   threshold - 1))
                   .has_value());
}

TEST(ThresholdSig, CombineCorruptedShareMidWideBatchOnlyDropsThatShare) {
  // Corrupt one share inside a full wide group: the other lanes of the batch
  // must still be admitted, so threshold+1 submitted shares with one bad one
  // still combine — and exactly-threshold with one bad one must not.
  constexpr std::uint32_t n = 25, threshold = 17;
  const lc::ThresholdScheme ts(n, threshold, 4242);
  const auto msg = lc::Digest::of_string("mid-batch");
  std::vector<lc::SignatureShare> shares;
  for (std::uint32_t i = 0; i < threshold + 1; ++i) shares.push_back(ts.sign_share(i, msg));
  shares[3].bytes[7] ^= 0x40;  // inside the first wide group
  EXPECT_TRUE(ts.combine(msg, shares).has_value());
  shares.pop_back();  // exactly threshold submitted, one invalid
  EXPECT_FALSE(ts.combine(msg, shares).has_value());
}

TEST(ThresholdSig, CombineDuplicatesAcrossWideBatchBoundaries) {
  // The same signer appearing in two different wide groups counts once.
  constexpr std::uint32_t n = 25, threshold = 17;
  const lc::ThresholdScheme ts(n, threshold, 4242);
  const auto msg = lc::Digest::of_string("dup-across");
  std::vector<lc::SignatureShare> shares;
  for (std::uint32_t i = 0; i < 12; ++i) shares.push_back(ts.sign_share(i, msg));
  // Pad to two full 8-lane groups with duplicates of signer 0 — 16 valid
  // shares but only 12 distinct signers.
  while (shares.size() < 16) shares.push_back(ts.sign_share(0, msg));
  EXPECT_FALSE(ts.combine(msg, shares).has_value());
  for (std::uint32_t i = 12; i < threshold; ++i) shares.push_back(ts.sign_share(i, msg));
  EXPECT_TRUE(ts.combine(msg, shares).has_value());
}

TEST(ThresholdSig, CombineSkipsOutOfRangeSignerMidBatch) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("oob");
  auto shares = shares_from(ts, msg, {0, 1});
  shares.push_back(lc::SignatureShare{kN + 3, {}});  // breaks the pair loop
  const auto rest = shares_from(ts, msg, {2, 3, 4});
  shares.insert(shares.end(), rest.begin(), rest.end());
  EXPECT_TRUE(ts.combine(msg, shares).has_value());  // 5 valid distinct remain
}

TEST(ThresholdSig, CombineIsWorkerPoolSizeInvariant) {
  // Combine bursts fan share verification across the worker pool; the
  // verdict — including duplicate discounting, a corrupted share, and the
  // out-of-range singles fallback inside one lane's chunk — must be
  // identical for every pool size.
  constexpr std::uint32_t n = 100, threshold = 67;
  const lc::ThresholdScheme ts(n, threshold, 1717);
  const auto msg = lc::Digest::of_string("pool-invariant");
  std::vector<lc::SignatureShare> shares;
  for (std::uint32_t i = 0; i < threshold; ++i) shares.push_back(ts.sign_share(i, msg));
  shares[31].bytes[7] ^= 0x80;                     // one corrupted share
  shares.push_back(ts.sign_share(10, msg));        // duplicate signer
  shares.push_back(lc::SignatureShare{n + 5, {}}); // out-of-range mid-burst
  for (std::uint32_t i = threshold; i < n; ++i) shares.push_back(ts.sign_share(i, msg));

  auto& pool = lu::WorkerPool::global();
  const auto serial = ts.combine(msg, shares);
  ASSERT_TRUE(serial.has_value());
  for (const std::size_t lanes : {2u, 4u, 7u}) {
    pool.resize(lanes);
    const auto parallel = ts.combine(msg, shares);
    ASSERT_TRUE(parallel.has_value()) << "lanes=" << lanes;
    EXPECT_EQ(*parallel, *serial) << "lanes=" << lanes;

    // Exactly at threshold the corrupted share must still tip the verdict.
    std::vector<lc::SignatureShare> exact(shares.begin(),
                                          shares.begin() + threshold);
    EXPECT_FALSE(ts.combine(msg, exact).has_value()) << "lanes=" << lanes;
    exact[31].bytes[7] ^= 0x80;
    EXPECT_TRUE(ts.combine(msg, exact).has_value()) << "lanes=" << lanes;
  }
  pool.resize(1);
}

TEST(ThresholdSig, CombineCorruptedTagHalfRejected) {
  // The last 16 bytes of a share come from the domain-separated 0x01 MAC;
  // batched verification must still check them byte-for-byte.
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("tag1");
  auto shares = shares_from(ts, msg, {0, 1, 2, 3, 4});
  shares[2].bytes[40] ^= 0x01;  // corrupt inside the 0x01-MAC half
  EXPECT_FALSE(ts.combine(msg, shares).has_value());
  shares[2].bytes[40] ^= 0x01;
  EXPECT_TRUE(ts.combine(msg, shares).has_value());
}

TEST(ThresholdSig, AnyThresholdSubsetYieldsSameSignature) {
  // Unique-signature property: as with threshold BLS, the combined signature
  // is independent of which 2f+1 shares were used.
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("unique");
  const auto s1 = ts.combine(msg, shares_from(ts, msg, {0, 1, 2, 3, 4}));
  const auto s2 = ts.combine(msg, shares_from(ts, msg, {2, 3, 4, 5, 6}));
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(*s1, *s2);
}

TEST(ThresholdSig, CombinedSignatureBoundToMessage) {
  const auto ts = make_scheme();
  const auto m1 = lc::Digest::of_string("m1");
  const auto sig = ts.combine(m1, shares_from(ts, m1, {0, 1, 2, 3, 4}));
  ASSERT_TRUE(sig);
  EXPECT_FALSE(ts.verify(lc::Digest::of_string("m2"), *sig));
}

TEST(ThresholdSig, TamperedCombinedSignatureRejected) {
  const auto ts = make_scheme();
  const auto msg = lc::Digest::of_string("m");
  auto sig = ts.combine(msg, shares_from(ts, msg, {0, 1, 2, 3, 4}));
  ASSERT_TRUE(sig);
  sig->bytes[47] ^= 0x80;
  EXPECT_FALSE(ts.verify(msg, *sig));
}

TEST(ThresholdSig, SchemesWithDifferentSeedsAreIndependent) {
  const lc::ThresholdScheme a(kN, kThreshold, 1);
  const lc::ThresholdScheme b(kN, kThreshold, 2);
  const auto msg = lc::Digest::of_string("m");
  EXPECT_FALSE(b.verify_share(msg, a.sign_share(0, msg)));
}

TEST(ThresholdSig, RejectsInvalidParameters) {
  EXPECT_THROW(lc::ThresholdScheme(0, 0, 1), lu::ContractViolation);
  EXPECT_THROW(lc::ThresholdScheme(4, 5, 1), lu::ContractViolation);
  EXPECT_THROW(lc::ThresholdScheme(4, 0, 1), lu::ContractViolation);
}

// Parameterized sweep: for n = 3f+1, combining exactly 2f+1 shares succeeds
// and 2f fails, across system sizes used throughout the evaluation.
class ThresholdSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdSweep, ThresholdBoundaryIsExact) {
  const std::uint32_t f = GetParam();
  const std::uint32_t n = 3 * f + 1;
  const std::uint32_t threshold = 2 * f + 1;
  const lc::ThresholdScheme ts(n, threshold, 7);
  const auto msg = lc::Digest::of_string("sweep");

  std::vector<lc::SignatureShare> shares;
  for (std::uint32_t i = 0; i < threshold; ++i) shares.push_back(ts.sign_share(i, msg));

  auto below = shares;
  below.pop_back();
  EXPECT_FALSE(ts.combine(msg, below).has_value()) << "f=" << f;

  const auto sig = ts.combine(msg, shares);
  ASSERT_TRUE(sig.has_value()) << "f=" << f;
  EXPECT_TRUE(ts.verify(msg, *sig));
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, ThresholdSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 21, 42, 85, 133, 199));
