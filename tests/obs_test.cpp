// Observability subsystem: HDR histogram accuracy against exact quantiles,
// the lock-free registry's record/scrape paths (including a record-vs-scrape
// race the tsan build hammers), JSON writer output, the HTTP exposition
// server on a polled event loop, and the request-stage tracer's sampling and
// span ring (src/obs/).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/http.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

using namespace leopard;
using obs::HdrHistogram;
using obs::HdrLayout;

namespace {

/// Exact nearest-rank quantile over raw samples, the reference the histogram
/// is judged against.
std::uint64_t exact_percentile(std::vector<std::uint64_t> samples, double p) {
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<std::uint64_t>(p * static_cast<double>(samples.size()) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

}  // namespace

// --- HdrLayout / HdrHistogram ------------------------------------------------

TEST(HdrLayout, IndexRoundTripsWithinBucketBounds) {
  // Every value must land in a bucket whose [lower_bound, lower_bound+width)
  // range contains it; exhaustive over the exact region, sampled above.
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const auto idx = HdrLayout::index_of(v);
    ASSERT_LT(idx, HdrLayout::kBuckets);
    EXPECT_GE(v, HdrLayout::lower_bound(idx)) << v;
    EXPECT_LT(v, HdrLayout::lower_bound(idx) + HdrLayout::width_of(idx)) << v;
  }
  util::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.next_u64() >> (rng.uniform(40));
    const auto idx = HdrLayout::index_of(v);
    ASSERT_LT(idx, HdrLayout::kBuckets);
    if (v < (std::uint64_t{1} << HdrLayout::kMaxBits)) {
      EXPECT_GE(v, HdrLayout::lower_bound(idx)) << v;
      EXPECT_LT(v, HdrLayout::lower_bound(idx) + HdrLayout::width_of(idx)) << v;
    } else {
      EXPECT_EQ(idx, HdrLayout::kBuckets - 1) << "huge value must clamp to top bucket";
    }
  }
}

TEST(HdrLayout, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < HdrLayout::kSub; ++v) {
    EXPECT_EQ(HdrLayout::index_of(v), v);
    EXPECT_EQ(HdrLayout::representative(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(HdrLayout::width_of(static_cast<std::uint32_t>(v)), 1u);
  }
}

TEST(HdrHistogram, PercentilesTrackExactQuantilesWithinRelativeError) {
  // Mixed-scale latency-like distribution: microseconds to seconds. The
  // layout guarantees ≤ 1/kSub relative quantization error; allow a little
  // slack for nearest-rank ties at bucket edges.
  util::Rng rng(42);
  HdrHistogram hist;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    // log-uniform over [1us, 2s)
    const double exponent = 10.0 + rng.uniform_real() * 21.0;
    const auto v = static_cast<std::uint64_t>(std::pow(2.0, exponent));
    samples.push_back(v);
    hist.record(v);
  }
  EXPECT_EQ(hist.count(), samples.size());
  for (const double p : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto exact = exact_percentile(samples, p);
    const auto approx = hist.percentile(p);
    const double rel = std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
                       static_cast<double>(exact);
    EXPECT_LE(rel, 2.0 / HdrLayout::kSub) << "p=" << p << " exact=" << exact
                                          << " approx=" << approx;
  }
  EXPECT_EQ(hist.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(HdrHistogram, ResetClearsEverything) {
  HdrHistogram hist;
  hist.record(100);
  hist.record(1000);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.percentile(0.5), 0u);
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, CountersAndGaugesAggregateAcrossThreads) {
  obs::Registry reg;
  auto counter = reg.counter("test_ops_total", "ops");
  auto gauge = reg.gauge("test_depth", "depth");

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  gauge.set(7.5);

  EXPECT_EQ(reg.counter_value(counter), 40000u);
  const auto text = reg.render_prometheus();
  EXPECT_NE(text.find("test_ops_total 40000"), std::string::npos) << text;
  EXPECT_NE(text.find("test_depth 7.5"), std::string::npos) << text;
}

TEST(Registry, SameNameAndLabelsReturnsSameSeries) {
  obs::Registry reg;
  auto a = reg.counter("dup_total", "h", "peer=\"1\"");
  auto b = reg.counter("dup_total", "h", "peer=\"1\"");
  auto other = reg.counter("dup_total", "h", "peer=\"2\"");
  a.inc(3);
  b.inc(4);
  other.inc(10);
  EXPECT_EQ(reg.counter_value(a), 7u);
  EXPECT_EQ(reg.counter_value(other), 10u);
}

TEST(Registry, HistogramSnapshotMatchesPlainHistogram) {
  obs::Registry reg;
  auto hist = reg.histogram("test_latency_ns", "lat");
  HdrHistogram reference;
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform(5'000'000);
    hist.record(v);
    reference.record(v);
  }
  const auto snap = reg.histogram_snapshot(hist);
  EXPECT_EQ(snap.count, reference.count());
  EXPECT_EQ(snap.sum, reference.sum());
  EXPECT_EQ(snap.max, reference.max());
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(snap.percentile(p), reference.percentile(p)) << p;
  }
}

TEST(Registry, PrometheusHistogramBucketsAreCumulativeAndConsistent) {
  obs::Registry reg;
  auto hist = reg.histogram("render_ns", "render");
  for (std::uint64_t v : {10u, 100u, 1000u, 100000u, 10000000u}) hist.record(v);
  const auto text = reg.render_prometheus();
  ASSERT_NE(text.find("# TYPE render_ns histogram"), std::string::npos) << text;

  // Parse the bucket series: cumulative counts must be monotone and +Inf must
  // equal the _count line.
  std::uint64_t last = 0;
  std::uint64_t inf_count = 0;
  std::uint64_t count_line = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("render_ns_bucket", 0) == 0) {
      const auto count = std::stoull(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(count, last) << line;
      last = count;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_count = count;
    } else if (line.rfind("render_ns_count", 0) == 0) {
      count_line = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(inf_count, 5u);
  EXPECT_EQ(count_line, 5u);
}

TEST(Registry, CallbackSeriesEvaluateAtScrape) {
  obs::Registry reg;
  std::uint64_t backing = 3;
  reg.counter_fn("cb_total", "cb", {},
                 [&backing] { return static_cast<double>(backing); });
  reg.gauge_fn("cb_gauge", "cb", {}, [] { return 2.25; });
  auto text = reg.render_prometheus();
  EXPECT_NE(text.find("cb_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("cb_gauge 2.25"), std::string::npos) << text;
  backing = 9;
  text = reg.render_prometheus();
  EXPECT_NE(text.find("cb_total 9"), std::string::npos) << text;
}

TEST(Registry, ConcurrentRecordAndScrapeIsSafe) {
  // The tsan CI job runs this: writers hammer a counter + histogram while the
  // main thread scrapes both text and snapshots. Scrapes may tear (stale
  // values) but must never crash, race, or go backwards.
  obs::Registry reg;
  auto counter = reg.counter("race_total", "race");
  auto hist = reg.histogram("race_ns", "race");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        counter.inc();
        hist.record(rng.uniform(1'000'000));
      }
    });
  }

  std::uint64_t prev_count = 0;
  std::uint64_t prev_counter = 0;
  for (int i = 0; i < 200; ++i) {
    const auto text = reg.render_prometheus();
    EXPECT_NE(text.find("race_total"), std::string::npos);
    const auto snap = reg.histogram_snapshot(hist);
    EXPECT_GE(snap.count, prev_count) << "scraped count went backwards";
    prev_count = snap.count;
    const auto c = reg.counter_value(counter);
    EXPECT_GE(c, prev_counter) << "counter went backwards";
    prev_counter = c;
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Quiesced: totals are now exact and consistent.
  const auto snap = reg.histogram_snapshot(hist);
  std::uint64_t bucket_sum = 0;
  for (const auto b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, snap.count);
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, ProducesValidNestedJson) {
  obs::JsonWriter w;
  w.object_begin();
  w.key("name").value("le\"opard\n");
  w.key("count").value(std::uint64_t{42});
  w.key("ratio").value(0.5);
  w.key("live").value(true);
  w.key("items").array_begin();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.array_end();
  w.key("nested").object_begin().key("x").value(std::int64_t{-3}).object_end();
  w.object_end();
  EXPECT_EQ(w.str(),
            "{\"name\":\"le\\\"opard\\n\",\"count\":42,\"ratio\":0.5,\"live\":true,"
            "\"items\":[1,2],\"nested\":{\"x\":-3}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.array_begin();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.array_end();
  EXPECT_EQ(w.str(), "[null,null]");
}

// --- HttpServer -------------------------------------------------------------

namespace {

/// Blocking mini HTTP client driven against a loop we poll ourselves: sends
/// one GET from a helper thread while the test thread polls the server loop.
std::string http_get(std::uint16_t port, const std::string& target, net::EventLoop& loop) {
  std::string response;
  std::atomic<bool> done{false};
  std::thread client([&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    const std::string req = "GET " + target + " HTTP/1.0\r\nHost: test\r\n\r\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    done.store(true);
  });
  // Serve until the client saw connection close (HTTP/1.0 semantics).
  for (int i = 0; i < 2000 && !done.load(); ++i) loop.poll(5);
  client.join();
  return response;
}

}  // namespace

TEST(HttpServer, ServesRegistryEndpoints) {
  obs::Registry reg;
  reg.counter("http_test_total", "t").inc(5);
  net::EventLoop loop;
  obs::HttpServer server(loop, {});
  ASSERT_TRUE(server.listening());
  ASSERT_NE(server.port(), 0);
  server.serve_registry(reg);

  const auto metrics = http_get(server.port(), "/metrics", loop);
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("http_test_total 5"), std::string::npos) << metrics;

  const auto health = http_get(server.port(), "/healthz", loop);
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const auto statusz = http_get(server.port(), "/statusz", loop);
  EXPECT_NE(statusz.find("200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("\"http_test_total\""), std::string::npos) << statusz;

  const auto missing = http_get(server.port(), "/nope", loop);
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST(HttpServer, CustomHandlerSeesQueryString) {
  net::EventLoop loop;
  obs::HttpServer server(loop, {});
  ASSERT_TRUE(server.listening());
  server.handle("/echo", [](std::string_view query) {
    obs::HttpServer::Response resp;
    resp.body = "q=" + std::string(query) + " traces=" + obs::query_param(query, "traces");
    return resp;
  });
  const auto got = http_get(server.port(), "/echo?traces=1&x=2", loop);
  EXPECT_NE(got.find("q=traces=1&x=2 traces=1"), std::string::npos) << got;
}

TEST(HttpServer, QueryParamParsing) {
  EXPECT_EQ(obs::query_param("a=1&b=2", "a"), "1");
  EXPECT_EQ(obs::query_param("a=1&b=2", "b"), "2");
  EXPECT_EQ(obs::query_param("a=1&b=2", "c"), "");
  EXPECT_EQ(obs::query_param("", "a"), "");
  EXPECT_EQ(obs::query_param("flag", "flag"), "");
}

// --- StageTracer ------------------------------------------------------------

TEST(StageTracer, SamplingIsDeterministicAndRoughlyOneInN) {
  obs::Registry reg;
  obs::StageTracer::Options opts;
  opts.sample_every = 8;
  obs::StageTracer tracer(reg, opts);
  obs::StageTracer tracer2(reg, opts);

  int sampled = 0;
  for (std::uint64_t seq = 0; seq < 8000; ++seq) {
    const bool s = tracer.sampled(100, seq);
    EXPECT_EQ(s, tracer2.sampled(100, seq)) << "sampling must be replica-independent";
    if (s) ++sampled;
  }
  EXPECT_GT(sampled, 8000 / 8 / 2);
  EXPECT_LT(sampled, 8000 / 8 * 2);

  obs::StageTracer::Options off;
  off.sample_every = 0;
  obs::StageTracer disabled(reg, off);
  EXPECT_FALSE(disabled.sampled(1, 1));
}

TEST(StageTracer, SpansCompleteThroughRingAndHistograms) {
  obs::Registry reg;
  obs::StageTracer::Options opts;
  opts.sample_every = 1;  // sample everything
  opts.ring_capacity = 4;
  obs::StageTracer tracer(reg, opts);

  for (std::uint64_t seq = 0; seq < 10; ++seq) {
    const std::int64_t ingress = static_cast<std::int64_t>(seq) * 1000;
    tracer.on_generated(7, seq, ingress, ingress + 100);
    tracer.on_executed(7, seq, ingress + 100, ingress + 250, ingress + 400);
  }

  const auto gen = reg.histogram_snapshot(
      reg.histogram("leopard_request_stage_ns", "h", "stage=\"generation\""));
  EXPECT_EQ(gen.count, 10u);
  EXPECT_EQ(gen.percentile(0.5), HdrLayout::representative(HdrLayout::index_of(100)));
  const auto total = reg.histogram_snapshot(
      reg.histogram("leopard_request_stage_ns", "h", "stage=\"total\""));
  EXPECT_EQ(total.count, 10u);

  // Ring holds only the last 4 spans, oldest first.
  obs::JsonWriter w;
  tracer.write_json(w);
  const auto& json = w.str();
  EXPECT_NE(json.find("\"spans_completed\":10"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"seq\":5"), std::string::npos) << "evicted span still present";
  EXPECT_NE(json.find("\"seq\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seq\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_ns\":400"), std::string::npos) << json;
}

TEST(StageTracer, UnmatchedExecutionStillFeedsStageHistograms) {
  // An on_executed with no stashed ingress (e.g. tracer started mid-flight)
  // must still record dissemination/agreement, just not a total span.
  obs::Registry reg;
  obs::StageTracer::Options opts;
  opts.sample_every = 1;
  obs::StageTracer tracer(reg, opts);
  tracer.on_executed(3, 99, 1000, 1500, 2000);
  const auto diss = reg.histogram_snapshot(
      reg.histogram("leopard_request_stage_ns", "h", "stage=\"dissemination\""));
  EXPECT_EQ(diss.count, 1u);
  const auto total = reg.histogram_snapshot(
      reg.histogram("leopard_request_stage_ns", "h", "stage=\"total\""));
  EXPECT_EQ(total.count, 0u);
}
