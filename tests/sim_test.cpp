// Simulator substrate: event ordering, cancellation, NIC serialization math,
// shared-duplex coupling, CPU queueing, GST delays, traffic accounting.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace ls = leopard::sim;

namespace {

/// Minimal payload with a fixed size.
struct TestPayload final : ls::Payload {
  std::size_t size;
  ls::Component comp;
  explicit TestPayload(std::size_t s, ls::Component c = ls::Component::kMisc)
      : size(s), comp(c) {}
  [[nodiscard]] std::size_t wire_size() const override { return size; }
  [[nodiscard]] ls::Component component() const override { return comp; }
};

/// Node that records delivery times.
struct RecordingNode final : ls::Node {
  std::vector<std::pair<ls::NodeId, ls::SimTime>> deliveries;
  ls::Simulator* sim = nullptr;
  void on_message(ls::NodeId from, const ls::PayloadPtr&) override {
    deliveries.emplace_back(from, sim->now());
  }
};

}  // namespace

TEST(EventQueue, RunsInTimeOrder) {
  ls::EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.run_next(100)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  ls::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (q.run_next(100)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelledEventsDoNotRun) {
  ls::EventQueue q;
  bool ran = false;
  auto handle = q.schedule(10, [&] { ran = true; });
  handle.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.run_next(100).has_value());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, RespectsLimit) {
  ls::EventQueue q;
  q.schedule(50, [] {});
  EXPECT_FALSE(q.run_next(49).has_value());
  EXPECT_TRUE(q.run_next(50).has_value());
}

TEST(EventQueue, CallbackMayScheduleMoreEvents) {
  ls::EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(count * 10, chain);
  };
  q.schedule(0, chain);
  while (q.run_next(1000)) {
  }
  EXPECT_EQ(count, 5);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  ls::Simulator sim;
  ls::SimTime seen = -1;
  sim.schedule_after(500, [&] { seen = sim.now(); });
  sim.run_until(1000);
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  ls::Simulator sim;
  sim.run_until(100);
  ls::SimTime seen = -1;
  sim.schedule_at(5, [&] { seen = sim.now(); });  // in the past
  sim.run_until(200);
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, RunToCompletionDrains) {
  ls::Simulator sim;
  int fired = 0;
  sim.schedule_after(10, [&] { ++fired; });
  sim.schedule_after(20, [&] { ++fired; });
  EXPECT_EQ(sim.run_to_completion(), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(TransmissionDelay, MatchesArithmetic) {
  // 1250 bytes at 1 Gbps = 10 us.
  EXPECT_EQ(ls::transmission_delay(1250, 1e9), 10 * ls::kMicrosecond);
  // 9.8 Gbps NIC: 128 B in ~104 ns.
  EXPECT_NEAR(static_cast<double>(ls::transmission_delay(128, 9.8e9)), 104.5, 1.0);
}

namespace {
ls::NetworkConfig fast_costs_config() {
  ls::NetworkConfig cfg;
  cfg.propagation_delay = 1 * ls::kMillisecond;
  cfg.frame_overhead_bytes = 0;
  cfg.costs = ls::CostModel{};
  cfg.costs.send_per_msg = 0;
  cfg.costs.send_per_byte_ns = 0;
  cfg.costs.recv_per_msg = 0;
  cfg.costs.recv_per_byte_ns = 0;
  return cfg;
}
}  // namespace

TEST(Network, DeliveryIncludesSerializationAndPropagation) {
  ls::Simulator sim;
  auto cfg = fast_costs_config();
  cfg.default_out_bps = 1e6;  // 1 Mbps: 1000 bytes = 8 ms
  cfg.default_in_bps = 1e6;
  ls::Network net(sim, cfg);

  RecordingNode a;
  RecordingNode b;
  a.sim = &sim;
  b.sim = &sim;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);

  net.send(ida, idb, std::make_shared<TestPayload>(1000));
  sim.run_until(ls::kSecond);

  ASSERT_EQ(b.deliveries.size(), 1u);
  // 8 ms egress + 1 ms propagation + 8 ms ingress = 17 ms.
  EXPECT_EQ(b.deliveries[0].second, 17 * ls::kMillisecond);
}

TEST(Network, SenderSerializesMulticastCopies) {
  ls::Simulator sim;
  auto cfg = fast_costs_config();
  cfg.default_out_bps = 1e6;
  cfg.default_in_bps = 1e9;  // receive side negligible
  ls::Network net(sim, cfg);

  RecordingNode sender;
  sender.sim = &sim;
  std::vector<RecordingNode> receivers(3);
  std::vector<ls::NodeId> ids{net.add_node(&sender)};
  for (auto& r : receivers) {
    r.sim = &sim;
    ids.push_back(net.add_node(&r));
  }

  // 1000-byte message to 3 receivers: copies leave at 8, 16, 24 ms — the
  // leader-bottleneck effect in miniature.
  net.multicast(ids[0], ids, std::make_shared<TestPayload>(1000));
  sim.run_until(ls::kSecond);

  std::vector<ls::SimTime> arrival_times;
  for (auto& r : receivers) {
    ASSERT_EQ(r.deliveries.size(), 1u);
    arrival_times.push_back(r.deliveries[0].second);
  }
  std::sort(arrival_times.begin(), arrival_times.end());
  EXPECT_NEAR(static_cast<double>(arrival_times[0]), 8e6 + 1e6 + 8e3, 1e4);
  EXPECT_NEAR(static_cast<double>(arrival_times[1]), 16e6 + 1e6 + 8e3, 1e4);
  EXPECT_NEAR(static_cast<double>(arrival_times[2]), 24e6 + 1e6 + 8e3, 1e4);
}

TEST(Network, SharedDuplexCouplesDirections) {
  ls::Simulator sim;
  auto cfg = fast_costs_config();
  cfg.default_out_bps = 1e6;
  cfg.default_in_bps = 1e6;
  cfg.shared_duplex = true;
  ls::Network net(sim, cfg);

  RecordingNode a;
  RecordingNode b;
  RecordingNode c;
  a.sim = &sim;
  b.sim = &sim;
  c.sim = &sim;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);
  const auto idc = net.add_node(&c);

  // b simultaneously sends to c and receives from a: with a shared link both
  // 1000-byte transfers serialize on b's single 1 Mbps timeline.
  net.send(idb, idc, std::make_shared<TestPayload>(1000));
  net.send(ida, idb, std::make_shared<TestPayload>(1000));
  sim.run_until(ls::kSecond);

  ASSERT_EQ(b.deliveries.size(), 1u);
  // a's egress 8ms + prop 1ms; then b's ingress waits for b's own egress
  // (which finishes at 8ms) before its 8ms ingress: delivery ≥ 17ms.
  EXPECT_GE(b.deliveries[0].second, 16 * ls::kMillisecond);
}

TEST(Network, ChargeCpuDelaysSubsequentDeliveries) {
  ls::Simulator sim;
  auto cfg = fast_costs_config();
  cfg.default_out_bps = 1e9;
  cfg.default_in_bps = 1e9;
  ls::Network net(sim, cfg);

  struct BusyNode final : ls::Node {
    ls::Network* net = nullptr;
    ls::Simulator* sim = nullptr;
    std::vector<ls::SimTime> times;
    ls::NodeId self = 0;
    void on_message(ls::NodeId, const ls::PayloadPtr&) override {
      times.push_back(sim->now());
      net->charge_cpu(self, 10 * ls::kMillisecond);  // heavy handler
    }
  };

  RecordingNode sender;
  sender.sim = &sim;
  BusyNode busy;
  busy.net = &net;
  busy.sim = &sim;
  const auto ids = net.add_node(&sender);
  busy.self = net.add_node(&busy);

  net.send(ids, busy.self, std::make_shared<TestPayload>(10));
  net.send(ids, busy.self, std::make_shared<TestPayload>(10));
  sim.run_until(ls::kSecond);

  ASSERT_EQ(busy.times.size(), 2u);
  // Second delivery waits out the first handler's charged CPU time.
  EXPECT_GE(busy.times[1] - busy.times[0], 10 * ls::kMillisecond);
}

TEST(Network, PreGstDelayAppliesOnlyBeforeGst) {
  ls::Simulator sim;
  auto cfg = fast_costs_config();
  cfg.default_out_bps = 1e9;
  cfg.default_in_bps = 1e9;
  cfg.gst = 100 * ls::kMillisecond;
  cfg.pre_gst_extra_delay = [](ls::NodeId, ls::NodeId, ls::SimTime) {
    return 50 * ls::kMillisecond;
  };
  ls::Network net(sim, cfg);

  RecordingNode a;
  RecordingNode b;
  a.sim = &sim;
  b.sim = &sim;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);

  net.send(ida, idb, std::make_shared<TestPayload>(10));  // before GST
  sim.run_until(200 * ls::kMillisecond);
  net.send(ida, idb, std::make_shared<TestPayload>(10));  // after GST
  sim.run_until(ls::kSecond);

  ASSERT_EQ(b.deliveries.size(), 2u);
  EXPECT_GE(b.deliveries[0].second, 51 * ls::kMillisecond);  // delayed
  EXPECT_LE(b.deliveries[1].second - 200 * ls::kMillisecond,
            2 * ls::kMillisecond);  // prompt
}

TEST(Network, LinkFilterDropsMessages) {
  ls::Simulator sim;
  ls::Network net(sim, fast_costs_config());
  RecordingNode a;
  RecordingNode b;
  a.sim = &sim;
  b.sim = &sim;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);
  net.set_link_filter([](ls::NodeId, ls::NodeId, const ls::Payload&) { return false; });
  net.send(ida, idb, std::make_shared<TestPayload>(10));
  sim.run_until(ls::kSecond);
  EXPECT_TRUE(b.deliveries.empty());
}

TEST(Network, SelfSendRejected) {
  ls::Simulator sim;
  ls::Network net(sim, fast_costs_config());
  RecordingNode a;
  a.sim = &sim;
  const auto ida = net.add_node(&a);
  EXPECT_THROW(net.send(ida, ida, std::make_shared<TestPayload>(1)),
               leopard::util::ContractViolation);
}

TEST(Traffic, AccountsBothDirectionsPerComponent) {
  ls::Simulator sim;
  auto cfg = fast_costs_config();
  cfg.frame_overhead_bytes = 10;
  ls::Network net(sim, cfg);
  RecordingNode a;
  RecordingNode b;
  a.sim = &sim;
  b.sim = &sim;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);

  net.send(ida, idb, std::make_shared<TestPayload>(90, ls::Component::kVote));
  sim.run_until(ls::kSecond);

  EXPECT_EQ(net.traffic().bytes(ida, ls::Direction::kSend, ls::Component::kVote), 100u);
  EXPECT_EQ(net.traffic().bytes(idb, ls::Direction::kReceive, ls::Component::kVote), 100u);
  EXPECT_EQ(net.traffic().messages(ida, ls::Direction::kSend, ls::Component::kVote), 1u);
  EXPECT_EQ(net.traffic().bytes(ida, ls::Direction::kSend, ls::Component::kDatablock), 0u);
}

TEST(Traffic, MeasurementMarkExcludesWarmup) {
  ls::Simulator sim;
  ls::Network net(sim, fast_costs_config());
  RecordingNode a;
  RecordingNode b;
  a.sim = &sim;
  b.sim = &sim;
  const auto ida = net.add_node(&a);
  const auto idb = net.add_node(&b);

  net.send(ida, idb, std::make_shared<TestPayload>(100));
  sim.run_until(100 * ls::kMillisecond);
  net.traffic().mark_measurement_start(sim.now());
  EXPECT_EQ(net.traffic().total_bytes(ida, ls::Direction::kSend), 0u);

  net.send(ida, idb, std::make_shared<TestPayload>(100));
  sim.run_until(ls::kSecond);
  EXPECT_EQ(net.traffic().total_bytes(ida, ls::Direction::kSend), 100u);
}

TEST(Traffic, UnmeteredNodesSkipOwnAccounting) {
  ls::Simulator sim;
  ls::Network net(sim, fast_costs_config());
  RecordingNode client;
  RecordingNode replica;
  client.sim = &sim;
  replica.sim = &sim;
  const auto idc = net.add_node(&client, /*metered=*/false);
  const auto idr = net.add_node(&replica);

  net.send(idc, idr, std::make_shared<TestPayload>(100, ls::Component::kClientRequest));
  sim.run_until(ls::kSecond);

  EXPECT_EQ(net.traffic().total_bytes(idc, ls::Direction::kSend), 0u);
  EXPECT_EQ(net.traffic().bytes(idr, ls::Direction::kReceive, ls::Component::kClientRequest),
            100u);
  ASSERT_EQ(replica.deliveries.size(), 1u);
}
