// Wire layer: frame round-trips for every message type, hard-limit and
// malformed-frame rejection, and partial-read reassembly across split
// read()s (net/wire.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>

#include "net/manifest.hpp"
#include "net/wire.hpp"
#include "proto/messages.hpp"
#include "util/check.hpp"

using namespace leopard;

namespace {

crypto::Digest digest_of(std::uint8_t fill) {
  crypto::Sha256::DigestBytes b{};
  b.fill(fill);
  return crypto::Digest(b);
}

crypto::SignatureShare share_of(std::uint32_t signer, std::uint8_t fill) {
  crypto::SignatureShare s;
  s.signer = signer;
  s.bytes.fill(fill);
  return s;
}

crypto::ThresholdSignature tsig_of(std::uint8_t fill) {
  crypto::ThresholdSignature s;
  s.bytes.fill(fill);
  return s;
}

proto::Request request_of(std::uint64_t client, std::uint64_t seq, bool real_payload) {
  proto::Request r;
  r.client_id = client;
  r.seq = seq;
  r.payload_size = 48;
  if (real_payload) {
    r.payload.assign(48, static_cast<std::uint8_t>(seq));
  }
  r.submitted_at = 123456;  // sim-only: must NOT survive the wire
  return r;
}

/// Encode → reassemble via FrameReader → decode → re-encode; the re-encoded
/// frame must be byte-identical (a canonical-encoding round trip).
sim::PayloadPtr round_trip(const sim::Payload& msg) {
  const auto frame = net::encode_frame(msg);

  net::FrameReader reader;
  reader.feed(frame);
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kFrame);

  const auto decoded = net::decode_payload(f.type, f.body, /*local_now=*/777);
  EXPECT_NE(decoded, nullptr);
  if (decoded == nullptr) return nullptr;

  EXPECT_EQ(net::encode_frame(*decoded), frame) << "re-encode must be byte-identical";
  EXPECT_EQ(decoded->component(), msg.component());
  return decoded;
}

template <typename T>
std::shared_ptr<const T> round_trip_as(const T& msg) {
  auto decoded = std::dynamic_pointer_cast<const T>(round_trip(msg));
  EXPECT_NE(decoded, nullptr) << "decoded to the wrong dynamic type";
  return decoded;
}

}  // namespace

TEST(Wire, ClientRequestRoundTrip) {
  proto::ClientRequestMsg msg;
  msg.requests.push_back(request_of(9, 0, true));
  msg.requests.push_back(request_of(9, 1, false));  // synthetic payload
  const auto decoded = round_trip_as(msg);
  ASSERT_EQ(decoded->requests.size(), 2u);
  EXPECT_EQ(decoded->requests[0].payload, msg.requests[0].payload);
  EXPECT_EQ(decoded->requests[1].payload_size, 48u);
  EXPECT_TRUE(decoded->requests[1].payload.empty());
  // Sim-only metadata is re-stamped with the receiver's clock.
  EXPECT_EQ(decoded->requests[0].submitted_at, 777);
  // Identity-bearing fields survive exactly: digests match.
  EXPECT_EQ(decoded->requests[0].digest(), msg.requests[0].digest());
}

TEST(Wire, AckRoundTrip) {
  proto::AckMsg msg;
  msg.client_id = 42;
  msg.seqs = {1, 2, 3, 100};
  const auto decoded = round_trip_as(msg);
  EXPECT_EQ(decoded->client_id, 42u);
  EXPECT_EQ(decoded->seqs, msg.seqs);
}

TEST(Wire, DatablockRoundTripRecomputesDigest) {
  proto::Datablock db;
  db.maker = 3;
  db.counter = 17;
  db.requests.push_back(request_of(5, 0, true));
  db.requests.push_back(request_of(5, 1, true));
  const proto::DatablockMsg msg(std::move(db));
  const auto decoded = round_trip_as(msg);
  EXPECT_EQ(decoded->datablock.maker, 3u);
  EXPECT_EQ(decoded->datablock.counter, 17u);
  EXPECT_EQ(decoded->cached_digest, msg.cached_digest);  // recomputed, not relayed
  EXPECT_EQ(decoded->created_at, 777);                   // receiver-stamped
}

TEST(Wire, ReadyRoundTrip) {
  proto::ReadyMsg msg;
  msg.datablock_hashes = {digest_of(1), digest_of(2)};
  const auto decoded = round_trip_as(msg);
  EXPECT_EQ(decoded->datablock_hashes, msg.datablock_hashes);
}

TEST(Wire, BftBlockRoundTrip) {
  proto::BftBlock block;
  block.view = 2;
  block.sn = 99;
  block.links = {digest_of(7), digest_of(8), digest_of(9)};
  const proto::BftBlockMsg msg(std::move(block), share_of(1, 0xAB));
  const auto decoded = round_trip_as(msg);
  EXPECT_EQ(decoded->block.sn, 99u);
  EXPECT_EQ(decoded->block.links.size(), 3u);
  EXPECT_EQ(decoded->leader_share, msg.leader_share);
  EXPECT_EQ(decoded->cached_digest, msg.cached_digest);
}

TEST(Wire, VoteAndProofRoundTrip) {
  proto::VoteMsg vote;
  vote.round = 2;
  vote.block_digest = digest_of(0x33);
  vote.share = share_of(5, 0x44);
  const auto v = round_trip_as(vote);
  EXPECT_EQ(v->round, 2);
  EXPECT_EQ(v->share, vote.share);

  proto::ProofMsg proof;
  proof.round = 1;
  proof.block_digest = digest_of(0x55);
  proof.signature = tsig_of(0x66);
  const auto p = round_trip_as(proof);
  EXPECT_EQ(p->signature, proof.signature);
}

TEST(Wire, QueryAndChunkResponseRoundTrip) {
  proto::QueryMsg query;
  query.missing = {digest_of(0x10)};
  round_trip_as(query);

  proto::ChunkResponseMsg chunk;
  chunk.datablock_hash = digest_of(0x21);
  chunk.merkle_root = digest_of(0x22);
  chunk.chunk_index = 3;
  chunk.leaf_count = 8;
  chunk.chunk = {1, 2, 3, 4, 5};
  chunk.chunk_size = 5;
  chunk.proof = {digest_of(0x23), digest_of(0x24), digest_of(0x25)};
  const auto c = round_trip_as(chunk);
  EXPECT_EQ(c->chunk, chunk.chunk);
  EXPECT_EQ(c->proof, chunk.proof);
  EXPECT_EQ(c->leaf_count, 8u);
}

TEST(Wire, CheckpointRoundTripBothForms) {
  proto::CheckpointMsg vote;
  vote.sn = 50;
  vote.state = digest_of(0x71);
  vote.share = share_of(2, 0x72);
  const auto v = round_trip_as(vote);
  ASSERT_TRUE(v->share.has_value());
  EXPECT_FALSE(v->signature.has_value());
  EXPECT_EQ(*v->share, *vote.share);

  proto::CheckpointMsg proof;
  proof.sn = 50;
  proof.state = digest_of(0x71);
  proof.signature = tsig_of(0x73);
  const auto p = round_trip_as(proof);
  EXPECT_FALSE(p->share.has_value());
  ASSERT_TRUE(p->signature.has_value());
}

TEST(Wire, TimeoutViewChangeNewViewRoundTrip) {
  proto::TimeoutMsg timeout;
  timeout.view = 4;
  timeout.share = share_of(0, 0x81);
  round_trip_as(timeout);

  proto::ViewChangeMsg vc;
  vc.new_view = 5;
  vc.checkpoint_sn = 20;
  vc.checkpoint_state = digest_of(0x91);
  vc.checkpoint_proof = tsig_of(0x92);
  proto::NotarizedBlock nb;
  nb.block.view = 4;
  nb.block.sn = 21;
  nb.block.links = {digest_of(0x93)};
  nb.notarization = tsig_of(0x94);
  vc.notarized.push_back(nb);
  vc.sender_sig = share_of(3, 0x95);
  vc.sender = 3;
  const auto v = round_trip_as(vc);
  ASSERT_EQ(v->notarized.size(), 1u);
  EXPECT_EQ(v->notarized[0].block.sn, 21u);
  EXPECT_EQ(v->sender, 3u);

  proto::NewViewMsg nv;
  nv.new_view = 5;
  nv.view_changes.push_back(vc);
  nv.leader_sig = share_of(1, 0x96);
  const auto n = round_trip_as(nv);
  ASSERT_EQ(n->view_changes.size(), 1u);
  EXPECT_EQ(n->view_changes[0].checkpoint_sn, 20u);
}

TEST(Wire, BaselineMessagesRoundTrip) {
  proto::BaselineBlockMsg block;
  block.view = 1;
  block.height = 12;
  block.parent = digest_of(0xA1);
  block.justify_target = digest_of(0xA2);
  block.justify_sig = tsig_of(0xA3);
  block.batch.push_back(request_of(7, 0, true));
  block.cached_digest = block.compute_digest();  // as both proposers do
  const auto b = round_trip_as(block);
  EXPECT_EQ(b->cached_digest, block.cached_digest);  // recomputed on decode
  EXPECT_EQ(b->batch.size(), 1u);

  proto::BaselineVoteMsg vote;
  vote.phase = 2;
  vote.view = 1;
  vote.height = 12;
  vote.block_digest = block.cached_digest;
  vote.share = share_of(2, 0xA4);
  const auto v = round_trip_as(vote);
  EXPECT_EQ(v->phase, 2);
  EXPECT_EQ(v->height, 12u);
}

TEST(Wire, HelloRoundTripAndBadMagic) {
  const auto frame = net::encode_hello_frame(net::Hello{net::Hello::kMagic, 42});
  net::FrameReader reader;
  reader.feed(frame);
  net::FrameReader::Frame f;
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  ASSERT_EQ(f.type, net::MsgType::kHello);
  const auto hello = net::decode_hello(f.body);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->node_id, 42u);

  // Hello with the wrong magic is rejected.
  util::Bytes bad(f.body.begin(), f.body.end());
  bad[0] ^= 0xFF;
  EXPECT_FALSE(net::decode_hello(bad).has_value());
  // Hello bodies never decode as payloads.
  EXPECT_EQ(net::decode_payload(net::MsgType::kHello, f.body, 0), nullptr);
}

// ---------------------------------------------------------------------------
// Malformed input rejection
// ---------------------------------------------------------------------------

TEST(Wire, UnknownTagIsRejected) {
  proto::AckMsg msg;
  msg.client_id = 1;
  auto frame = net::encode_frame(msg);
  frame[net::kFrameHeaderBytes] = 0xEE;  // stomp the tag
  net::FrameReader reader;
  reader.feed(frame);
  net::FrameReader::Frame f;
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  EXPECT_EQ(net::decode_payload(f.type, f.body, 0), nullptr);
}

TEST(Wire, TruncatedBodyIsRejected) {
  proto::ReadyMsg msg;
  msg.datablock_hashes = {digest_of(1), digest_of(2)};
  const auto frame = net::encode_frame(msg);
  // Claimed count = 2 but only one digest present.
  const std::span<const std::uint8_t> body(frame.data() + net::kFrameHeaderBytes + 1,
                                           frame.size() - net::kFrameHeaderBytes - 1 - 32);
  EXPECT_EQ(net::decode_payload(net::MsgType::kReady, body, 0), nullptr);
}

TEST(Wire, TrailingGarbageIsRejected) {
  proto::AckMsg msg;
  msg.client_id = 7;
  auto frame = net::encode_frame(msg);
  util::Bytes body(frame.begin() + net::kFrameHeaderBytes + 1, frame.end());
  body.push_back(0x5A);  // longer than the declared encoding
  EXPECT_EQ(net::decode_payload(net::MsgType::kAck, body, 0), nullptr);
}

TEST(Wire, HostileCountFieldIsRejectedWithoutAllocating) {
  // A Ready frame claiming 2^31 digests in a 40-byte body.
  util::ByteWriter w;
  w.u32(0x80000000u);
  w.raw(digest_of(1).bytes());
  EXPECT_EQ(net::decode_payload(net::MsgType::kReady, w.bytes(), 0), nullptr);

  // A BftBlock frame claiming 2^32-1 links in a tiny body (exercises the
  // bound inside proto::BftBlock::decode, reached via kBftBlock frames).
  util::ByteWriter b;
  b.u32(1);           // view
  b.u64(9);           // sn
  b.u32(0xFFFFFFFFu); // links count
  b.raw(digest_of(2).bytes());
  EXPECT_EQ(net::decode_payload(net::MsgType::kBftBlock, b.bytes(), 0), nullptr);
}

TEST(Wire, OversizedFrameHeaderIsAStickyError) {
  net::FrameReader reader(/*max_frame=*/1024);
  util::ByteWriter w;
  w.u32(2048);  // over the limit
  w.u8(static_cast<std::uint8_t>(net::MsgType::kAck));
  reader.feed(w.bytes());
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
  EXPECT_TRUE(reader.errored());
  // Sticky: more bytes do not clear the desync.
  reader.feed(net::encode_frame(proto::AckMsg{}));
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
}

TEST(Wire, ZeroLengthFrameIsAnError) {
  net::FrameReader reader;
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  reader.feed(zeros);
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
}

// ---------------------------------------------------------------------------
// Partial-read reassembly
// ---------------------------------------------------------------------------

TEST(Wire, ReassemblesFramesFedOneByteAtATime) {
  proto::QueryMsg query;
  query.missing = {digest_of(0xC1), digest_of(0xC2)};
  const auto frame = net::encode_frame(query);

  net::FrameReader reader;
  net::FrameReader::Frame f;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(reader.next(f), net::FrameReader::Status::kNeedMore) << "byte " << i;
    reader.feed({frame.data() + i, 1});
  }
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  const auto decoded =
      std::dynamic_pointer_cast<const proto::QueryMsg>(net::decode_payload(f.type, f.body, 0));
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->missing, query.missing);
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kNeedMore);
}

TEST(Wire, DrainsMultipleFramesFromOneFeed) {
  util::Bytes stream;
  for (std::uint64_t i = 0; i < 5; ++i) {
    proto::AckMsg msg;
    msg.client_id = i;
    msg.seqs = {i};
    net::encode_frame(msg, stream);
  }
  // Split the stream at an arbitrary frame-straddling point.
  net::FrameReader reader;
  reader.feed({stream.data(), stream.size() / 2 + 3});
  reader.feed({stream.data() + stream.size() / 2 + 3, stream.size() - stream.size() / 2 - 3});

  for (std::uint64_t i = 0; i < 5; ++i) {
    net::FrameReader::Frame f;
    ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame) << "frame " << i;
    const auto decoded =
        std::dynamic_pointer_cast<const proto::AckMsg>(net::decode_payload(f.type, f.body, 0));
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->client_id, i);  // FIFO frame order
  }
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, StateOfferRoundTripAllKinds) {
  for (const auto kind : {proto::StateOfferMsg::kProbe, proto::StateOfferMsg::kOffer,
                          proto::StateOfferMsg::kPull}) {
    proto::StateOfferMsg msg;
    msg.kind = kind;
    msg.transfer_id = 0xABCD1234u;
    msg.from_index = 17;
    msg.until_index = 42;
    msg.exec_digest = digest_of(0x5A);
    const auto decoded = round_trip_as(msg);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->transfer_id, msg.transfer_id);
    EXPECT_EQ(decoded->from_index, 17u);
    EXPECT_EQ(decoded->until_index, 42u);
    EXPECT_EQ(decoded->exec_digest, msg.exec_digest);
  }
}

TEST(Wire, StateOfferUnknownKindIsRejected) {
  proto::StateOfferMsg msg;
  msg.kind = 7;  // not a Kind
  const auto frame = net::encode_frame(msg);
  net::FrameReader reader;
  reader.feed(frame);
  net::FrameReader::Frame f;
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  EXPECT_EQ(net::decode_payload(f.type, f.body, 0), nullptr);
}

TEST(Wire, StateChunkRoundTrip) {
  proto::StateChunkMsg msg;
  msg.transfer_id = 99;
  msg.from_index = 3;
  msg.until_index = 9;
  msg.exec_digest = digest_of(0xC3);
  msg.chunk_index = 2;
  msg.data_shards = 2;
  msg.total_shards = 4;
  msg.chunk = {1, 2, 3, 4, 5};
  const auto decoded = round_trip_as(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->transfer_id, 99u);
  EXPECT_EQ(decoded->from_index, 3u);
  EXPECT_EQ(decoded->until_index, 9u);
  EXPECT_EQ(decoded->exec_digest, msg.exec_digest);
  EXPECT_EQ(decoded->chunk_index, 2u);
  EXPECT_EQ(decoded->data_shards, 2u);
  EXPECT_EQ(decoded->total_shards, 4u);
  EXPECT_EQ(decoded->chunk, msg.chunk);
}

TEST(Wire, StateChunkTruncatedBodyIsRejected) {
  proto::StateChunkMsg msg;
  msg.chunk = {9, 9, 9};
  const auto frame = net::encode_frame(msg);
  net::FrameReader reader;
  reader.feed({frame.data(), frame.size() - 2});  // drop chunk tail
  // The reader still waits for the declared length; decode the truncated
  // body directly instead.
  const auto body = std::span<const std::uint8_t>{frame}.subspan(5, frame.size() - 7);
  EXPECT_EQ(net::decode_payload(net::MsgType::kStateChunk, body, 0), nullptr);
}

// ---------------------------------------------------------------------------
// Shard-frame envelopes (instance-id field)
// ---------------------------------------------------------------------------

TEST(Wire, ShardFrameRoundTripCarriesInstance) {
  proto::VoteMsg vote;
  vote.round = 1;
  vote.block_digest = digest_of(0xD1);
  vote.share = share_of(2, 0xD2);

  const auto frame = net::encode_frame(vote, /*instance=*/7);
  net::FrameReader reader;
  reader.feed(frame);
  net::FrameReader::Frame f;
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  EXPECT_EQ(f.instance, 7u);
  EXPECT_EQ(f.type, net::MsgType::kVote);

  const auto decoded =
      std::dynamic_pointer_cast<const proto::VoteMsg>(net::decode_payload(f.type, f.body, 0));
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->share, vote.share);
  // Canonical: re-encoding to the same instance reproduces the bytes.
  EXPECT_EQ(net::encode_frame(*decoded, 7), frame);
}

TEST(Wire, InstanceZeroIsByteCompatibleWithBareFrames) {
  proto::AckMsg msg;
  msg.client_id = 5;
  msg.seqs = {1, 2};
  // Instance 0 must emit exactly the pre-shard frame: an S=1 cluster is
  // wire-compatible with unsharded peers.
  EXPECT_EQ(net::encode_frame(msg, 0), net::encode_frame(msg));

  net::FrameReader reader;
  reader.feed(net::encode_frame(msg));
  net::FrameReader::Frame f;
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  EXPECT_EQ(f.instance, 0u);  // bare frames read back as instance 0
}

TEST(Wire, HostileInstanceIdStillParses) {
  // The reader's job is framing, not policy: a well-formed envelope with an
  // absurd instance id parses cleanly (the transport drops it as unknown
  // without poisoning the connection).
  proto::AckMsg msg;
  msg.client_id = 9;
  const auto frame = net::encode_frame(msg, 0xFFFFFFFFu);
  net::FrameReader reader;
  reader.feed(frame);
  net::FrameReader::Frame f;
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  EXPECT_EQ(f.instance, 0xFFFFFFFFu);
  EXPECT_NE(net::decode_payload(f.type, f.body, 0), nullptr);
  // The stream stays aligned: a following bare frame still reads.
  reader.feed(net::encode_frame(msg));
  ASSERT_EQ(reader.next(f), net::FrameReader::Status::kFrame);
  EXPECT_EQ(f.instance, 0u);
}

TEST(Wire, NestedShardFrameIsAStickyError) {
  // Hand-build an envelope whose inner frame is another envelope.
  util::ByteWriter body;
  body.u8(static_cast<std::uint8_t>(net::MsgType::kShardFrame));
  body.u32(1);                                                  // outer instance
  body.u8(static_cast<std::uint8_t>(net::MsgType::kShardFrame));  // nested tag
  body.u32(2);
  body.u8(static_cast<std::uint8_t>(net::MsgType::kAck));
  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.bytes());

  net::FrameReader reader;
  reader.feed(frame.bytes());
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
  EXPECT_TRUE(reader.errored());
}

TEST(Wire, ShardWrappedHelloIsAStickyError) {
  // Hellos identify the connection, never an instance; wrapping one is a
  // protocol violation.
  const auto hello = net::encode_hello_frame(net::Hello{net::Hello::kMagic, 3});
  util::ByteWriter body;
  body.u8(static_cast<std::uint8_t>(net::MsgType::kShardFrame));
  body.u32(1);
  // Append the hello's tag+body (skip its length header).
  body.raw(std::span<const std::uint8_t>(hello.data() + net::kFrameHeaderBytes,
                                         hello.size() - net::kFrameHeaderBytes));
  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.bytes());

  net::FrameReader reader;
  reader.feed(frame.bytes());
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
}

TEST(Wire, TruncatedShardEnvelopeIsAStickyError) {
  // An envelope too short to hold instance id + inner tag.
  util::ByteWriter body;
  body.u8(static_cast<std::uint8_t>(net::MsgType::kShardFrame));
  body.u8(0x01);
  body.u8(0x02);
  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.raw(body.bytes());

  net::FrameReader reader;
  reader.feed(frame.bytes());
  net::FrameReader::Frame f;
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
  // Sticky: a clean frame afterwards does not recover the stream.
  reader.feed(net::encode_frame(proto::AckMsg{}));
  EXPECT_EQ(reader.next(f), net::FrameReader::Status::kError);
}

namespace {

/// Drains `q` in `chunk`-byte slices through fill_iovecs/consume — the exact
/// shape of a sendmsg() loop under a tiny socket buffer — and returns the
/// byte stream that "hit the wire". max_iov is deliberately small so resume
/// also crosses the iovec-count cap, not just partial-write offsets.
util::Bytes drain_in_chunks(net::SendQueue& q, std::size_t chunk) {
  util::Bytes out;
  iovec iov[4];
  while (!q.empty()) {
    std::size_t total = 0;
    const auto n_iov = q.fill_iovecs(iov, 4, &total);
    EXPECT_GT(n_iov, 0u);
    EXPECT_GT(total, 0u);
    std::size_t want = std::min(chunk, total);
    std::size_t copied = 0;
    for (std::size_t i = 0; i < n_iov && copied < want; ++i) {
      const auto take = std::min(want - copied, static_cast<std::size_t>(iov[i].iov_len));
      const auto* p = static_cast<const std::uint8_t*>(iov[i].iov_base);
      out.insert(out.end(), p, p + take);
      copied += take;
    }
    q.consume(copied);
  }
  return out;
}

net::SharedFrame shared_frame_of(const sim::Payload& msg, std::uint32_t instance) {
  net::SharedFrame f;
  EXPECT_TRUE(net::encode_shared_frame(msg, instance, f));
  return f;
}

constexpr std::size_t kNoLimit = ~std::size_t{0};

}  // namespace

TEST(SendQueue, VectoredDrainResumesAtArbitraryByteOffsets) {
  // A bare frame (4-byte header), an enveloped frame (9-byte shard header),
  // and a pre-framed from_wire blob (headerless) — every header/body layout
  // the queue can hold.
  proto::AckMsg ack;
  ack.client_id = 7;
  ack.seqs = {1, 2, 3};
  proto::QueryMsg query;
  query.missing = {digest_of(0xAB)};
  proto::AckMsg tail;
  tail.client_id = 9;

  util::Bytes expected = net::encode_frame(ack);
  util::Bytes enveloped;
  ASSERT_TRUE(net::encode_frame(query, /*instance=*/3, enveloped));
  expected.insert(expected.end(), enveloped.begin(), enveloped.end());
  const auto tail_wire = net::encode_frame(tail);
  expected.insert(expected.end(), tail_wire.begin(), tail_wire.end());

  // 1, 2 (splits the u32 header), 3, 5 (straddles header/body), 4096 (whole
  // queue in one gulp): the wire bytes must be identical regardless.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                  std::size_t{5}, std::size_t{4096}}) {
    net::SendQueue q;
    EXPECT_TRUE(q.push(shared_frame_of(ack, 0), kNoLimit).queued);
    EXPECT_TRUE(q.push(shared_frame_of(query, 3), kNoLimit).queued);
    EXPECT_TRUE(q.push(net::SharedFrame::from_wire(tail_wire), kNoLimit).queued);
    EXPECT_EQ(q.bytes(), expected.size());

    EXPECT_EQ(drain_in_chunks(q, chunk), expected) << "chunk=" << chunk;
    EXPECT_EQ(q.bytes(), 0u);
    EXPECT_EQ(q.offset(), 0u);
  }
}

TEST(SendQueue, ConsumeReportsCompletedFramesAcrossBoundaries) {
  proto::AckMsg a;
  a.client_id = 1;
  net::SendQueue q;
  const auto wire = net::encode_frame(a);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.push(net::SharedFrame::from_wire(wire), kNoLimit).queued);
  }
  // One byte short of two frames: one completion, offset mid-second-frame.
  EXPECT_EQ(q.consume(2 * wire.size() - 1), 1u);
  EXPECT_EQ(q.frames(), 2u);
  EXPECT_EQ(q.offset(), wire.size() - 1);
  // The rest: the partial second frame and the whole third complete.
  EXPECT_EQ(q.consume(wire.size() + 1), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(SendQueue, ShedsOldestFirstButPinsPartiallyWrittenFront) {
  proto::AckMsg a;
  a.seqs = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto wire = net::encode_frame(a);
  const auto limit = 3 * wire.size();

  net::SendQueue q;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.push(net::SharedFrame::from_wire(wire), limit).queued);
  }
  // Partially write the front: it is now pinned (must leave the wire whole).
  EXPECT_EQ(q.consume(1), 0u);
  EXPECT_EQ(q.offset(), 1u);

  // Push under pressure: the two unpinned frames shed, the pinned front and
  // the new frame stay.
  const auto r = q.push(net::SharedFrame::from_wire(wire), limit - wire.size());
  EXPECT_TRUE(r.queued);
  EXPECT_EQ(r.shed, 2u);
  EXPECT_EQ(q.frames(), 2u);
  EXPECT_EQ(q.offset(), 1u) << "shedding must not disturb the written prefix";

  // A frame that cannot fit even after shedding everything unpinned is
  // rejected without purging the queue.
  net::SendQueue q2;
  EXPECT_TRUE(q2.push(net::SharedFrame::from_wire(wire), limit).queued);
  const auto r2 = q2.push(net::SharedFrame::from_wire(wire), wire.size() - 1);
  EXPECT_FALSE(r2.queued);
  EXPECT_EQ(q2.frames(), 1u) << "rejecting the new frame must not purge older ones";
}

TEST(SendQueue, SharedBodyAliasingSurvivesSheddingInAnotherQueue) {
  // Broadcast shape: one serialization, the same refcounted body on two peer
  // queues. Shedding it from one queue must not perturb the other's copy.
  proto::QueryMsg query;
  query.missing = {digest_of(0x5E)};
  const auto frame = shared_frame_of(query, 0);
  ASSERT_TRUE(frame.valid());
  const long base_refs = frame.body.use_count();

  net::SendQueue q1, q2;
  EXPECT_TRUE(q1.push(frame, kNoLimit).queued);  // copies alias, not bytes
  EXPECT_TRUE(q2.push(frame, kNoLimit).queued);
  EXPECT_EQ(frame.body.use_count(), base_refs + 2);

  // Force q1 to shed its copy; q2 still drains the exact wire bytes.
  proto::AckMsg big;
  big.seqs.assign(64, 1);
  const auto big_frame = shared_frame_of(big, 0);
  ASSERT_GT(big_frame.wire_size(), frame.wire_size());
  // Limit fits the big frame alone: the queued query frame must shed.
  EXPECT_EQ(q1.push(big_frame, big_frame.wire_size()).shed, 1u);
  EXPECT_EQ(frame.body.use_count(), base_refs + 1);

  util::Bytes expected = net::encode_frame(query);
  EXPECT_EQ(drain_in_chunks(q2, 4096), expected);
  EXPECT_EQ(frame.body.use_count(), base_refs);
}

TEST(SendQueue, AccountsAndLimitsOnFullWireSize) {
  // Regression: shedding used to budget body bytes only, so an enveloped
  // frame occupied 9 bytes more than the limit accounted for and
  // peer_buffer_limit under-counted real wire bytes.
  proto::QueryMsg query;
  query.missing = {digest_of(0x11)};
  const auto enveloped = shared_frame_of(query, /*instance=*/3);
  ASSERT_EQ(enveloped.header_len, 9u);

  util::Bytes wire;
  ASSERT_TRUE(net::encode_frame(query, 3, wire));
  EXPECT_EQ(enveloped.wire_size(), wire.size());

  net::SendQueue q;
  // One byte under the full wire size: rejected (a body-only budget would
  // have accepted it).
  EXPECT_FALSE(q.push(enveloped, enveloped.wire_size() - 1).queued);
  EXPECT_TRUE(q.push(enveloped, enveloped.wire_size()).queued);
  EXPECT_EQ(q.bytes(), wire.size());
}

TEST(Wire, WriteBufferCommitReassemblesOneByteAtATime) {
  // The recv()-in-place path: bytes land in write_buffer() spans and only
  // commit() publishes them. Mixed bare + shard-enveloped stream, committed
  // one byte at a time — the harshest compaction/resize schedule.
  proto::AckMsg ack;
  ack.client_id = 3;
  ack.seqs = {4, 5};
  proto::QueryMsg query;
  query.missing = {digest_of(0x2F), digest_of(0x30)};

  util::Bytes stream = net::encode_frame(ack);
  util::Bytes enveloped;
  ASSERT_TRUE(net::encode_frame(query, /*instance=*/2, enveloped));
  stream.insert(stream.end(), enveloped.begin(), enveloped.end());

  net::FrameReader reader;
  net::FrameReader::Frame f;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto dst = reader.write_buffer(1);
    ASSERT_GE(dst.size(), 1u);
    dst[0] = stream[i];
    reader.commit(1);
    while (reader.next(f) == net::FrameReader::Status::kFrame) {
      if (delivered == 0) {
        EXPECT_EQ(f.instance, 0u);
        const auto d = std::dynamic_pointer_cast<const proto::AckMsg>(
            net::decode_payload(f.type, f.body, 0));
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->client_id, ack.client_id);
      } else {
        EXPECT_EQ(f.instance, 2u);
        const auto d = std::dynamic_pointer_cast<const proto::QueryMsg>(
            net::decode_payload(f.type, f.body, 0));
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->missing, query.missing);
      }
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(reader.buffered(), 0u);

  // A span larger than requested may be handed out; committing less than the
  // span (a short recv) must only publish the committed prefix.
  net::FrameReader r2;
  const auto big = r2.write_buffer(1024);
  ASSERT_GE(big.size(), 1024u);
  const auto one = net::encode_frame(ack);
  std::copy(one.begin(), one.end(), big.begin());
  r2.commit(3);  // short read: header not even complete
  EXPECT_EQ(r2.next(f), net::FrameReader::Status::kNeedMore);
  EXPECT_EQ(r2.buffered(), 3u);
}

TEST(Manifest, RejectsDuplicateAddress) {
  const char* text =
      "protocol leopard\n"
      "n 2\n"
      "node 0 127.0.0.1:7000\n"
      "node 1 127.0.0.1:7000\n";
  EXPECT_THROW((void)net::Manifest::parse(text), util::ContractViolation);
}

TEST(Manifest, DuplicateAddressDiagnosticNamesBothNodes) {
  const char* text =
      "protocol leopard\n"
      "n 3\n"
      "node 0 127.0.0.1:7000\n"
      "node 1 127.0.0.1:7001\n"
      "node 2 127.0.0.1:7000\n";
  try {
    (void)net::Manifest::parse(text);
    FAIL() << "duplicate address must be rejected";
  } catch (const util::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("127.0.0.1:7000"), std::string::npos) << what;
    EXPECT_NE(what.find("node 0"), std::string::npos) << what;
  }
}

TEST(Manifest, DistinctAddressesStillParse) {
  const char* text =
      "protocol leopard\n"
      "n 2\n"
      "node 0 127.0.0.1:7000\n"
      "node 1 127.0.0.2:7000\n";  // same port, different host: fine
  const auto m = net::Manifest::parse(text);
  EXPECT_EQ(m.nodes.at(0).port, m.nodes.at(1).port);
}
