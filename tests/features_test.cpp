// Optional protocol features from §IV: the verify(·) request predicate, the
// deterministic µ(req) assignment, and multi-replica client submission
// (f+1 copies: lower latency for more dissemination).
#include <gtest/gtest.h>

#include "cluster_fixture.hpp"

using namespace leopard;
using test::ClusterOptions;
using test::LeopardCluster;

namespace {
ClusterOptions feature_opts() {
  ClusterOptions o;
  o.n = 4;
  o.protocol.datablock_requests = 50;
  o.protocol.bftblock_links = 2;
  o.protocol.datablock_max_wait = 100 * sim::kMillisecond;
  o.protocol.proposal_max_wait = 50 * sim::kMillisecond;
  o.protocol.view_timeout = 30 * sim::kSecond;
  o.client_rate_per_replica = 2000;
  o.payload_size = 64;
  o.real_payload = true;
  return o;
}
}  // namespace

// --- verify(·) ---------------------------------------------------------------

TEST(RequestValidator, InvalidRequestsAreFilteredAtIngress) {
  auto opts = feature_opts();
  LeopardCluster cluster(opts);
  // Reject every request whose first payload byte is below 0x80 (~half).
  for (std::uint32_t id = 0; id < 4; ++id) {
    cluster.replica(id).set_request_validator(
        [](const proto::Request& r) { return !r.payload.empty() && r.payload[0] >= 0x80; });
  }
  std::uint64_t executed_invalid = 0;
  std::uint64_t executed_valid = 0;
  cluster.replica(0).set_execution_handler([&](const proto::Request& r) {
    if (!r.payload.empty() && r.payload[0] >= 0x80) {
      ++executed_valid;
    } else {
      ++executed_invalid;
    }
  });
  cluster.run_for(3.0);

  EXPECT_GT(executed_valid, 500u);
  EXPECT_EQ(executed_invalid, 0u);  // nothing invalid ever commits
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(RequestValidator, AcceptAllValidatorChangesNothing) {
  auto opts = feature_opts();
  LeopardCluster cluster(opts);
  for (std::uint32_t id = 0; id < 4; ++id) {
    cluster.replica(id).set_request_validator([](const proto::Request&) { return true; });
  }
  cluster.run_for(2.0);
  EXPECT_GT(cluster.metrics().executed_requests, 1000u);
}

// --- µ(req) assignment ----------------------------------------------------------

TEST(MuAssignment, DeterministicAndNeverTheLeader) {
  proto::Request r;
  r.client_id = 42;
  r.seq = 7;
  const auto a = core::assign_replica(r, 16, 1);
  EXPECT_EQ(a, core::assign_replica(r, 16, 1));  // deterministic
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    r.seq = seq;
    const auto id = core::assign_replica(r, 16, 1);
    EXPECT_LT(id, 16u);
    EXPECT_NE(id, 1u);  // the leader never serves client ingress
  }
}

TEST(MuAssignment, BalancesUniformly) {
  proto::Request r;
  r.client_id = 9;
  std::vector<int> hits(16, 0);
  constexpr int kSamples = 8000;
  for (std::uint64_t seq = 0; seq < kSamples; ++seq) {
    r.seq = seq;
    ++hits[core::assign_replica(r, 16, 1)];
  }
  const double expected = kSamples / 15.0;
  for (std::uint32_t id = 0; id < 16; ++id) {
    if (id == 1) {
      EXPECT_EQ(hits[id], 0);
      continue;
    }
    EXPECT_NEAR(hits[id], expected, 0.25 * expected) << "replica " << id;
  }
}

TEST(MuAssignment, DifferentRequestsSpread) {
  // Two distinct requests rarely collide on the same replica at n = 64.
  int collisions = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    proto::Request a;
    a.client_id = i;
    a.seq = 1;
    proto::Request b;
    b.client_id = i;
    b.seq = 2;
    if (core::assign_replica(a, 64, 1) == core::assign_replica(b, 64, 1)) ++collisions;
  }
  EXPECT_LT(collisions, 30);
}

// --- multi-replica submission -----------------------------------------------------

TEST(MultiSubmit, CopiesReduceLatency) {
  // Two clusters differing only in submit_copies.
  auto measure = [](std::uint32_t copies) {
    ClusterOptions opts = feature_opts();
    opts.protocol.datablock_max_wait = 400 * sim::kMillisecond;
    opts.client_rate_per_replica = 300;
    opts.real_payload = false;
    opts.client_submit_copies = copies;
    LeopardCluster cluster(opts);
    cluster.run_for(5.0);
    EXPECT_GT(cluster.metrics().acked_requests, 100u) << "copies=" << copies;
    return cluster.metrics().mean_latency_sec();
  };
  const double lat1 = measure(1);
  const double lat3 = measure(3);
  // With three submission points a request joins whichever datablock fills
  // first: latency must not get worse, and typically improves.
  EXPECT_LE(lat3, lat1 * 1.05);
}

TEST(MultiSubmit, DuplicatesAckOnce) {
  ClusterOptions opts = feature_opts();
  opts.client_rate_per_replica = 500;
  opts.client_submit_copies = 3;
  LeopardCluster cluster(opts);
  cluster.run_for(3.0);
  // Executed counts duplicates (each copy commits via its own datablock) but
  // every request is acknowledged exactly once at the client.
  std::uint64_t submitted = 0;
  for (std::size_t i = 0; i < cluster.client_count(); ++i) {
    submitted += cluster.client(i).submitted();
  }
  EXPECT_LE(cluster.metrics().acked_requests, submitted);
  EXPECT_GT(cluster.metrics().acked_requests, submitted / 2);
}
